#include "failure/scenarios.hpp"

#include <algorithm>
#include <sstream>

#include "routing/ecmp.hpp"

namespace f2t::failure {

TracedPath trace_route_detailed(const net::Host& src, const net::Host& dst,
                                const net::Packet& probe, int max_hops) {
  TracedPath path;
  if (src.port_count() == 0) return {};
  path.nodes.push_back(&src);
  path.links.push_back(src.port(0).link);
  const net::Node* current = src.port(0).link->peer_of(src).node;
  for (int hop = 0; hop < max_hops; ++hop) {
    path.nodes.push_back(current);
    if (current == &dst) return path;
    const auto* sw = dynamic_cast<const net::L3Switch*>(current);
    if (sw == nullptr) return {};  // ended on a wrong host
    const auto& next_hops = sw->resolve_next_hops(probe.dst);
    if (next_hops.empty()) return {};
    const std::size_t pick = routing::ecmp_select(
        probe, static_cast<std::uint64_t>(sw->id()), next_hops.size());
    net::Link* link = sw->port(next_hops[pick].port).link;
    path.links.push_back(link);
    current = link->peer_of(*sw).node;
  }
  return {};  // loop / too long
}

std::vector<const net::Node*> trace_route(const net::Host& src,
                                          const net::Host& dst,
                                          const net::Packet& probe,
                                          int max_hops) {
  return trace_route_detailed(src, dst, probe, max_hops).nodes;
}

const char* condition_name(Condition c) {
  switch (c) {
    case Condition::kC1: return "C1";
    case Condition::kC2: return "C2";
    case Condition::kC3: return "C3";
    case Condition::kC4: return "C4";
    case Condition::kC5: return "C5";
    case Condition::kC6: return "C6";
    case Condition::kC7: return "C7";
    case Condition::kC8: return "C8";
  }
  return "?";
}

bool condition_requires_f2(Condition c) {
  return c == Condition::kC6 || c == Condition::kC7 || c == Condition::kC8;
}

namespace {

net::Link* ring_link(const topo::BuiltTopology& topo, net::L3Switch* sw,
                     bool right) {
  const auto it = topo.rings.find(sw);
  if (it == topo.rings.end()) return nullptr;
  const auto& ports = right ? it->second.right : it->second.left;
  if (ports.empty()) return nullptr;
  return sw->port(ports.front()).link;
}

std::string link_name(const net::Link* link) {
  return link->end_a().node->name() + "<->" + link->end_b().node->name();
}

/// Attempts to construct `condition` for one concrete 5-tuple; returns
/// nullopt when the traced path lacks the structural prerequisites.
std::optional<ScenarioPlan> try_build(const topo::BuiltTopology& topo,
                                      Condition condition,
                                      net::Protocol proto,
                                      std::uint16_t sport,
                                      std::uint16_t dport) {
  net::Network& network = *topo.network;
  const net::Host* src = topo.hosts.front();
  const net::Host* dst = topo.hosts.back();

  net::Packet probe;
  probe.src = src->addr();
  probe.dst = dst->addr();
  probe.proto = proto;
  probe.sport = sport;
  probe.dport = dport;

  const auto traced = trace_route_detailed(*src, *dst, probe);
  const auto& path = traced.nodes;
  if (path.size() < 5) return std::nullopt;  // expect host,tor,...,tor,host

  // Identify the downward aggregation switch Sx and the destination ToR.
  auto* dst_tor = const_cast<net::L3Switch*>(
      dynamic_cast<const net::L3Switch*>(path[path.size() - 2]));
  auto* sx = const_cast<net::L3Switch*>(
      dynamic_cast<const net::L3Switch*>(path[path.size() - 3]));
  if (dst_tor == nullptr || sx == nullptr) return std::nullopt;
  const int pod_index = topo.pod_of_agg(sx);
  if (pod_index < 0) return std::nullopt;
  const auto& pod = topo.pods[static_cast<std::size_t>(pod_index)];
  const int a = static_cast<int>(std::distance(
      pod.aggs.begin(), std::find(pod.aggs.begin(), pod.aggs.end(), sx)));
  const int width = static_cast<int>(pod.aggs.size());
  net::L3Switch* right = pod.aggs[static_cast<std::size_t>((a + 1) % width)];
  net::L3Switch* left =
      pod.aggs[static_cast<std::size_t>((a - 1 + width) % width)];

  // The core feeding Sx (present whenever src and dst pods differ).
  auto* core = path.size() >= 6
                   ? const_cast<net::L3Switch*>(
                         dynamic_cast<const net::L3Switch*>(
                             path[path.size() - 4]))
                   : nullptr;
  const bool core_on_path =
      core != nullptr &&
      std::find(topo.cores.begin(), topo.cores.end(), core) !=
          topo.cores.end();

  // The exact on-path links (parallel-link aware: the flow's hash picks a
  // specific member, and the scenario must fail that one).
  net::Link* sx_down = traced.links[traced.links.size() - 2];
  net::Link* core_down =
      core_on_path ? traced.links[traced.links.size() - 3] : nullptr;
  if (sx_down == nullptr) return std::nullopt;

  ScenarioPlan plan;
  plan.condition = condition;
  plan.src = src;
  plan.dst = dst;
  plan.sport = sport;
  plan.dport = dport;
  plan.sx = sx;
  plan.dst_tor = dst_tor;

  auto require = [](bool ok) { return ok; };

  switch (condition) {
    case Condition::kC1: {
      if (topo.f2 && !require(network.find_link(*right, *dst_tor) != nullptr &&
                              ring_link(topo, sx, true) != nullptr)) {
        return std::nullopt;
      }
      plan.fail_links = {sx_down};
      break;
    }
    case Condition::kC2: {
      if (!core_on_path || core_down == nullptr) return std::nullopt;
      if (topo.f2) {
        net::Link* core_ring = ring_link(topo, core, true);
        if (core_ring == nullptr) return std::nullopt;
        // The core's right across neighbour must own a downlink into the
        // destination pod (to Sx, its same-position agg).
        net::L3Switch* right_core = dynamic_cast<net::L3Switch*>(
            &network.node(core->port(topo.rings.at(core).right.front())
                              .peer_node));
        if (right_core == nullptr ||
            network.find_link(*right_core, *sx) == nullptr) {
          return std::nullopt;
        }
      }
      plan.fail_links = {core_down};
      break;
    }
    case Condition::kC3: {
      if (!core_on_path || core_down == nullptr) return std::nullopt;
      if (topo.f2) {
        // Both layers must satisfy condition 1 independently (§II-C:
        // "the combination of failures above different layers will not
        // affect the working scheme"): Sx's right across neighbour needs
        // the downlink to the ToR, and the core's right across neighbour
        // needs a downlink into the destination pod.
        if (!require(network.find_link(*right, *dst_tor) != nullptr &&
                     ring_link(topo, sx, true) != nullptr)) {
          return std::nullopt;
        }
        net::Link* core_ring = ring_link(topo, core, true);
        if (core_ring == nullptr) return std::nullopt;
        net::L3Switch* right_core = dynamic_cast<net::L3Switch*>(
            &network.node(core->port(topo.rings.at(core).right.front())
                              .peer_node));
        if (right_core == nullptr ||
            network.find_link(*right_core, *sx) == nullptr) {
          return std::nullopt;
        }
      }
      plan.fail_links = {sx_down, core_down};
      break;
    }
    case Condition::kC4: {
      if (width < 3) return std::nullopt;  // needs a third relay switch
      net::Link* right_down = network.find_link(*right, *dst_tor);
      if (right_down == nullptr) return std::nullopt;
      if (topo.f2) {
        net::L3Switch* right2 =
            pod.aggs[static_cast<std::size_t>((a + 2) % width)];
        if (network.find_link(*right2, *dst_tor) == nullptr) {
          return std::nullopt;
        }
      }
      plan.fail_links = {sx_down, right_down};
      break;
    }
    case Condition::kC5: {
      if (network.find_link(*left, *dst_tor) == nullptr) return std::nullopt;
      for (net::L3Switch* agg : pod.aggs) {
        if (agg == left) continue;
        if (net::Link* link = network.find_link(*agg, *dst_tor)) {
          plan.fail_links.push_back(link);
        }
      }
      if (plan.fail_links.empty()) return std::nullopt;
      break;
    }
    case Condition::kC6: {
      net::Link* across = ring_link(topo, sx, true);
      if (across == nullptr) return std::nullopt;
      if (network.find_link(*left, *dst_tor) == nullptr ||
          ring_link(topo, sx, false) == nullptr) {
        return std::nullopt;
      }
      plan.fail_links = {sx_down, across};
      break;
    }
    case Condition::kC7: {
      net::Link* right_down = network.find_link(*right, *dst_tor);
      net::Link* right_across = ring_link(topo, right, true);
      if (right_down == nullptr || right_across == nullptr) {
        return std::nullopt;
      }
      plan.fail_links = {sx_down, right_down, right_across};
      break;
    }
    case Condition::kC8: {
      net::Link* right_across = ring_link(topo, sx, true);
      net::Link* left_across = ring_link(topo, sx, false);
      if (right_across == nullptr || left_across == nullptr) {
        return std::nullopt;
      }
      plan.fail_links = {sx_down, right_across, left_across};
      break;
    }
  }

  std::ostringstream os;
  os << condition_name(condition) << ": flow " << src->name() << "->"
     << dst->name() << " sport=" << sport << " Sx=" << sx->name()
     << " failing {";
  for (std::size_t i = 0; i < plan.fail_links.size(); ++i) {
    if (i > 0) os << ", ";
    os << link_name(plan.fail_links[i]);
  }
  os << "}";
  plan.description = os.str();
  return plan;
}

}  // namespace

std::optional<ScenarioPlan> build_condition(const topo::BuiltTopology& topo,
                                            Condition condition,
                                            net::Protocol proto,
                                            std::uint16_t base_sport,
                                            int search_budget) {
  if (condition_requires_f2(condition) && !topo.f2) return std::nullopt;
  for (int i = 0; i < search_budget; ++i) {
    const auto sport = static_cast<std::uint16_t>(base_sport + i);
    if (auto plan = try_build(topo, condition, proto, sport, 9000)) {
      return plan;
    }
  }
  return std::nullopt;
}

}  // namespace f2t::failure
