#pragma once

#include <vector>

#include "net/network.hpp"

namespace f2t::failure {

/// Schedules link failures and recoveries against the simulation clock and
/// keeps an auditable history. All failures are bidirectional (the only
/// kind the paper evaluates; it leaves unidirectional failures to future
/// work). A whole-switch failure is modelled as the failure of all its
/// links, per the paper's footnote 1.
class FailureInjector {
 public:
  struct Event {
    net::LinkId link = net::kInvalidLink;
    sim::Time at = 0;
    bool up = false;
  };

  explicit FailureInjector(net::Network& network) : network_(network) {}

  /// Takes the link down at `when`.
  void fail_at(net::Link& link, sim::Time when);

  /// Brings the link back up at `when`.
  void recover_at(net::Link& link, sim::Time when);

  /// Down at `when`, back up at `when + duration`.
  void fail_for(net::Link& link, sim::Time when, sim::Time duration);

  /// Unidirectional failure (the paper's future-work case): only the
  /// direction originating at `from` is cut.
  void fail_direction_at(net::Link& link, const net::Node& from,
                         sim::Time when);
  void recover_direction_at(net::Link& link, const net::Node& from,
                            sim::Time when);

  /// Fails every link of a switch (switch crash) at `when`.
  void fail_switch_at(net::L3Switch& sw, sim::Time when);

  /// Links currently physically down.
  int active_failures() const;

  const std::vector<Event>& history() const { return history_; }

  net::Network& network() { return network_; }

 private:
  void apply(net::Link& link, bool up);

  net::Network& network_;
  std::vector<Event> history_;
};

}  // namespace f2t::failure
