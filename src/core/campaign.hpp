#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/json.hpp"
#include "failure/scenarios.hpp"
#include "sim/time.hpp"

namespace f2t::core {

/// Declarative description of a failure-injection campaign: the cartesian
/// matrix of topologies x control planes x failure sites x seed
/// replicates, plus the shared run knobs. Parsed from a user-authored
/// JSON spec (`f2tsim campaign --spec`), echoed verbatim into every
/// campaign artifact so a result file names the experiment that produced
/// it.
///
/// Failure sites come from two enumerators:
///  - `conditions`: the paper's Table IV structural conditions (C1..C8),
///    constructed against the reference flow exactly as `f2tsim recover`;
///  - `link_sites`: the first N switch-to-switch links (or all of them),
///    each failed individually with a probe flow steered across the link
///    when the ECMP search finds one — the exhaustive sweep the paper's
///    aggregate claims need.
struct CampaignSpec {
  static constexpr int kSchemaVersion = 1;

  struct TopologyAxis {
    std::string name = "f2";  ///< core::topology_builder name
    int ports = 8;
    int ring_width = 2;
    int aspen_f = 1;

    /// "f2-8", the label used in run records and aggregate keys.
    std::string label() const;
  };

  std::string name = "campaign";
  std::vector<TopologyAxis> topologies;
  std::vector<std::string> controls;  ///< "ospf" | "central" | "bgp"
  std::vector<failure::Condition> conditions;
  int link_sites = 0;  ///< first N switch links as sites; -1 = all
  int seeds = 1;       ///< replicates per (topology, control, site)
  std::uint64_t base_seed = 1;
  int detection_ms = 60;
  int spf_ms = 200;
  sim::Time fail_at = sim::millis(380);
  sim::Time horizon = sim::seconds(3);
  /// Detection + fault model. The defaults reproduce the pre-existing
  /// campaign behaviour exactly, and write_json emits these keys only
  /// when they differ from the defaults — a spec that does not use them
  /// produces a byte-identical artifact to older builds.
  std::string detection = "oracle";  ///< "oracle" | "probe"
  int bfd_tx_ms = 20;                ///< probe hello interval
  int bfd_multiplier = 3;            ///< missed hellos before down
  bool dampening = true;             ///< probe-mode flap dampening
  failure::FaultKind fault = failure::FaultKind::kCut;
  double gray_loss = 1.0;    ///< drop probability for "gray"
  int flap_period_ms = 300;  ///< full down/up cycle for "flap"
  int flap_cycles = 5;
  /// Transport fidelity: "packet" (default, byte-identical artifacts) or
  /// "flow" (fluid probe; see core::Fidelity for what it refuses).
  std::string fidelity = "packet";
  /// Observability axes (PR 7). `trace` turns on the journal per shard
  /// and derives recovery-span milestones into the per-run records;
  /// `sample_interval_ms > 0` runs the telemetry sampler per shard and
  /// records its queue-depth rollups. Both default off, and write_json
  /// emits the keys (and the extra per-run fields) only when set — specs
  /// that do not use them produce byte-identical artifacts to older
  /// builds. Note sampling adds tick events to each shard's schedule
  /// (still deterministic for a given spec, but not comparable to an
  /// unsampled artifact's event counts).
  bool trace = false;
  int sample_interval_ms = 0;
  /// Trace-shaped workload axis (transport/workload.hpp): when enabled,
  /// every shard additionally carries a TCP background workload across
  /// all host stacks — Poisson arrivals drawn from an empirical
  /// flow-size CDF, or periodic incast fan-in rounds — and the per-run
  /// records gain the tail-latency SLO rollup (FCT p50/p99/p999,
  /// deadline-miss split by the failure window). Packet fidelity only
  /// (the fluid probe has no host stacks); from_json rejects the
  /// combination. Default disabled: the spec key, the per-run fields and
  /// the aggregate "slo" section are all omitted, keeping older
  /// artifacts byte-identical.
  struct WorkloadAxis {
    bool enabled = false;
    std::string kind = "poisson";         ///< "poisson" | "incast"
    std::string size_dist = "websearch";  ///< "websearch" | "datamining"
    double load = 0.1;  ///< poisson: offered load, fraction of host uplink
    int fanin = 8;      ///< incast: workers per aggregation round
    std::uint64_t flow_bytes = 20'000;  ///< incast: per-worker bytes
    int deadline_ms = 250;  ///< per-flow deadline; 0 = best-effort
  };
  WorkloadAxis workload;
  /// Survivability sweep: per (topology, control), this many additional
  /// shards each fail one *randomly drawn* switch-to-switch link (the
  /// random failure process of the reliability/survivability methodology
  /// — arXiv 1510.02735). The draw is a pure function of (spec, shard
  /// index): enumerate_shards resolves it from the shard's derived seed,
  /// so the shard list stays deterministic and process workers
  /// re-enumerate it identically. Runs are labelled "R<draw>" and feed
  /// the artifact's "survivability" aggregate section (reliability/
  /// availability curves per topology). Default 0 — the key and the
  /// section are omitted, keeping older artifacts byte-identical.
  int random_sites = 0;

  /// Builds a spec from parsed JSON; throws std::invalid_argument on
  /// missing/mistyped fields and on unknown keys (typos must fail loudly,
  /// not silently run a default campaign).
  static CampaignSpec from_json(const json::Value& doc);
  static CampaignSpec parse(std::string_view text);

  /// Canonical JSON echo (stable field order, independent of the input's
  /// textual layout) — part of the deterministic campaign artifact.
  void write_json(std::ostream& os, int indent = 0) const;
};

/// One independent simulation of the campaign matrix. Shards are
/// enumerated in a deterministic order, and each carries its own RNG
/// stream split from the campaign's base seed by shard index — results
/// are a pure function of (spec, index), whatever thread runs them.
struct ShardSpec {
  int index = 0;
  CampaignSpec::TopologyAxis topology;
  std::string control;
  bool is_link_site = false;
  failure::Condition condition = failure::Condition::kC1;
  int link_site = -1;
  int replicate = 0;
  /// >= 0 for survivability shards: the random-draw ordinal within this
  /// (topology, control) group. The drawn link itself is stored in
  /// link_site (is_link_site is true), so the runner needs no new path.
  int random_site = -1;
  std::uint64_t seed = 0;  ///< sim::Random::derive_stream_seed(base, index)

  /// Site label: "C1".."C8", "L<index>" or "R<draw>".
  std::string site() const;
};

/// Expands the spec into its shard list. `link_sites == -1` is resolved
/// against each topology (built once, off the simulation clock) so the
/// shard list itself stays deterministic.
std::vector<ShardSpec> enumerate_shards(const CampaignSpec& spec);

/// Outcome of one shard: identity, the paper's recovery metrics, and the
/// deterministic work accounting. `wall_seconds` is the only
/// non-deterministic field and is excluded from the deterministic JSON.
struct ShardResult {
  int index = 0;
  std::string topology;
  std::string control;
  std::string site;
  std::string site_class;
  int replicate = 0;
  std::uint64_t seed = 0;
  bool ok = false;       ///< scenario construction succeeded
  bool on_path = false;  ///< probe flow crossed a failed link
  sim::Time connectivity_loss = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_lost = 0;
  std::size_t events_executed = 0;
  double wall_seconds = 0;
  std::string scenario;
  /// Trace-derived recovery milestones (filled when spec.trace; -1 when
  /// the journal shows the milestone never happened). Relative to the
  /// failure instant, like Table III.
  std::size_t spans = 0;
  sim::Time detect_ns = -1;
  sim::Time converge_ns = -1;
  /// Sampler summary (filled when spec.sample_interval_ms > 0): retained
  /// rows and the network-wide queue-depth rollup. queue_rollup records
  /// whether the rollup actually existed — when the sampler retained no
  /// rows (or the series is absent) the queue_* fields are *omitted*
  /// from the artifact rather than fabricated as 0.
  std::size_t samples = 0;
  bool queue_rollup = false;
  double queue_p99 = 0;
  double queue_max = 0;
  /// Workload SLO rollup (filled when spec.workload.enabled and the
  /// shard completed): flow counts and FCT tail percentiles from
  /// stats::compute_slo over the shard's background flows. The
  /// deadline-miss fractions split deadline-bearing flows by whether
  /// they *started* inside the failure window [fail_at, horizon); the
  /// flow counts make the campaign-level pooled miss fraction
  /// weightable. Like queue_rollup, `slo` records whether the rollup
  /// exists — artifacts omit the fields rather than fabricate zeros.
  bool slo = false;
  std::size_t slo_flows = 0;
  std::size_t slo_completed = 0;
  double fct_p50_ms = 0;
  double fct_p99_ms = 0;
  double fct_p999_ms = 0;
  std::size_t slo_deadline_in = 0;
  std::size_t slo_deadline_out = 0;
  double slo_miss_in = 0;
  double slo_miss_out = 0;
  /// Populated when the shard threw instead of completing: the exception
  /// message, recorded per shard so one poisoned axis value cannot abort
  /// the rest of the campaign. Emitted in the artifact only when
  /// non-empty (deterministic: the message depends on the spec, not on
  /// scheduling), with ok = false.
  std::string error;
};

/// Aggregate recovery statistics over one failure class (one
/// "<topology>/<control>/<site_class>" group, plus the "total" group).
/// Loss statistics are over affected runs (ok && on_path); the gap-loss
/// histogram buckets runs by packets lost: 0, 1-9, 10-99, 100-999, 1000+.
struct ClassAggregate {
  std::string key;
  int runs = 0;
  int affected = 0;  ///< ok && probe on-path
  int failed = 0;    ///< scenario construction failed
  double loss_ms_mean = 0;
  double loss_ms_p50 = 0;
  double loss_ms_p99 = 0;
  double loss_ms_max = 0;
  std::uint64_t packets_lost_total = 0;
  std::uint64_t gap_loss_hist[5] = {0, 0, 0, 0, 0};
};

std::vector<ClassAggregate> aggregate_runs(
    const std::vector<ShardResult>& runs);

/// Survivability aggregate over one "<topology>/<control>" group's
/// random-failure draws ("R*" sites): availability (fraction of the
/// post-failure window the probe flow was connected; off-path draws are
/// fully available by construction) and a reliability curve — the
/// fraction of ok draws whose connectivity gap closed within each
/// threshold of kReliabilityMs. Reproduces the reliability/availability
/// methodology of arXiv 1510.02735 over the engine's probe runs.
struct SurvivabilityAggregate {
  static constexpr int kReliabilityMs[4] = {1, 10, 100, 1000};

  std::string key;   ///< "<topology>/<control>"
  int draws = 0;     ///< random-site runs in the group
  int affected = 0;  ///< ok && probe on-path
  int failed = 0;    ///< scenario construction failed
  double availability_mean = 0;
  double availability_p50 = 0;
  double availability_min = 0;
  double reliability[4] = {0, 0, 0, 0};  ///< per kReliabilityMs threshold
};

/// Aggregates the random-site runs ("R*" labels) per topology/control.
/// `window` is the post-failure measurement window (horizon - fail_at)
/// availability is normalized against. Empty when the spec had no
/// random_sites.
std::vector<SurvivabilityAggregate> aggregate_survivability(
    const std::vector<ShardResult>& runs, sim::Time window);

/// Spec generator for a survivability sweep: `draws` random single-link
/// failure processes per (topology, control) — thousands of seeds over
/// randomly drawn failure sites producing the reliability/availability
/// curves above. The returned spec is a plain CampaignSpec: echo it,
/// shard it, or feed it straight to the campaign engine.
CampaignSpec survivability_spec(
    const std::vector<CampaignSpec::TopologyAxis>& topologies, int draws,
    std::uint64_t base_seed = 1);

// ------------------------------------------------------------------------
// Worker protocol: shard ranges, streamed JSONL shard records and the
// resumable checkpoint manifest (multi-process campaign execution).

/// Formats half-open shard ranges as "a:b,c:d" (the worker subcommand's
/// --shards argument).
std::string format_shard_ranges(
    const std::vector<std::pair<int, int>>& ranges);

/// Parses "a:b,c:d" back into half-open ranges; throws
/// std::invalid_argument on malformed text, empty or negative ranges.
std::vector<std::pair<int, int>> parse_shard_ranges(std::string_view text);

/// Compresses a sorted list of shard indices into minimal contiguous
/// half-open ranges (resume passes the *missing* indices through this).
std::vector<std::pair<int, int>> contiguous_ranges(
    const std::vector<int>& sorted_indices);

/// One shard record as a single JSONL line — the worker streaming
/// format. Round-trips every ShardResult field exactly (doubles at 17
/// significant digits, the 64-bit seed as a string), so a reduced
/// artifact is byte-identical to an in-process one.
void write_shard_record(std::ostream& os, const ShardResult& r);

/// Parses one record line; throws std::invalid_argument on malformed
/// input (a torn line from a killed worker must be detected, not
/// half-applied).
ShardResult parse_shard_record(std::string_view line);

/// Checkpoint manifest for a multi-process campaign: the spec echo plus
/// the shard/worker geometry, written to <state-dir>/manifest.json
/// before any worker starts. On --resume the manifest names the
/// campaign to continue, and the embedded spec must match byte-for-byte.
struct CheckpointManifest {
  static constexpr int kSchemaVersion = 1;

  CampaignSpec spec;
  int shards = 0;   ///< total shard count of the spec
  int workers = 0;  ///< worker count of the (initial) run

  void write_json(std::ostream& os) const;
  static CheckpointManifest parse(std::string_view text);
};

/// Everything one campaign produces. The deterministic portion (spec,
/// per-run records in shard order, aggregates) is byte-identical for a
/// given spec whatever --jobs is; the profile (wall clock, thread counts)
/// is appended only in the full artifact.
struct CampaignResult {
  static constexpr int kSchemaVersion = 1;

  CampaignSpec spec;
  std::vector<ShardResult> runs;  ///< in shard-index order

  int jobs = 1;
  int workers = 0;  ///< process-mode worker count; 0 = in-process threads
  double wall_seconds = 0;
  unsigned hardware_threads = 0;
  std::uint64_t steals = 0;  ///< work-stealing pool diagnostics

  /// Writes the campaign JSON artifact. With `include_profile` false the
  /// output is the deterministic portion only — what the determinism
  /// tests and the --jobs cross-checks compare byte-for-byte.
  void write_json(std::ostream& os, bool include_profile = true) const;
};

}  // namespace f2t::core
