#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.hpp"
#include "failure/scenarios.hpp"
#include "sim/time.hpp"

namespace f2t::core {

/// Declarative description of a failure-injection campaign: the cartesian
/// matrix of topologies x control planes x failure sites x seed
/// replicates, plus the shared run knobs. Parsed from a user-authored
/// JSON spec (`f2tsim campaign --spec`), echoed verbatim into every
/// campaign artifact so a result file names the experiment that produced
/// it.
///
/// Failure sites come from two enumerators:
///  - `conditions`: the paper's Table IV structural conditions (C1..C8),
///    constructed against the reference flow exactly as `f2tsim recover`;
///  - `link_sites`: the first N switch-to-switch links (or all of them),
///    each failed individually with a probe flow steered across the link
///    when the ECMP search finds one — the exhaustive sweep the paper's
///    aggregate claims need.
struct CampaignSpec {
  static constexpr int kSchemaVersion = 1;

  struct TopologyAxis {
    std::string name = "f2";  ///< core::topology_builder name
    int ports = 8;
    int ring_width = 2;
    int aspen_f = 1;

    /// "f2-8", the label used in run records and aggregate keys.
    std::string label() const;
  };

  std::string name = "campaign";
  std::vector<TopologyAxis> topologies;
  std::vector<std::string> controls;  ///< "ospf" | "central" | "bgp"
  std::vector<failure::Condition> conditions;
  int link_sites = 0;  ///< first N switch links as sites; -1 = all
  int seeds = 1;       ///< replicates per (topology, control, site)
  std::uint64_t base_seed = 1;
  int detection_ms = 60;
  int spf_ms = 200;
  sim::Time fail_at = sim::millis(380);
  sim::Time horizon = sim::seconds(3);
  /// Detection + fault model. The defaults reproduce the pre-existing
  /// campaign behaviour exactly, and write_json emits these keys only
  /// when they differ from the defaults — a spec that does not use them
  /// produces a byte-identical artifact to older builds.
  std::string detection = "oracle";  ///< "oracle" | "probe"
  int bfd_tx_ms = 20;                ///< probe hello interval
  int bfd_multiplier = 3;            ///< missed hellos before down
  bool dampening = true;             ///< probe-mode flap dampening
  failure::FaultKind fault = failure::FaultKind::kCut;
  double gray_loss = 1.0;    ///< drop probability for "gray"
  int flap_period_ms = 300;  ///< full down/up cycle for "flap"
  int flap_cycles = 5;
  /// Transport fidelity: "packet" (default, byte-identical artifacts) or
  /// "flow" (fluid probe; see core::Fidelity for what it refuses).
  std::string fidelity = "packet";
  /// Observability axes (PR 7). `trace` turns on the journal per shard
  /// and derives recovery-span milestones into the per-run records;
  /// `sample_interval_ms > 0` runs the telemetry sampler per shard and
  /// records its queue-depth rollups. Both default off, and write_json
  /// emits the keys (and the extra per-run fields) only when set — specs
  /// that do not use them produce byte-identical artifacts to older
  /// builds. Note sampling adds tick events to each shard's schedule
  /// (still deterministic for a given spec, but not comparable to an
  /// unsampled artifact's event counts).
  bool trace = false;
  int sample_interval_ms = 0;

  /// Builds a spec from parsed JSON; throws std::invalid_argument on
  /// missing/mistyped fields and on unknown keys (typos must fail loudly,
  /// not silently run a default campaign).
  static CampaignSpec from_json(const json::Value& doc);
  static CampaignSpec parse(std::string_view text);

  /// Canonical JSON echo (stable field order, independent of the input's
  /// textual layout) — part of the deterministic campaign artifact.
  void write_json(std::ostream& os, int indent = 0) const;
};

/// One independent simulation of the campaign matrix. Shards are
/// enumerated in a deterministic order, and each carries its own RNG
/// stream split from the campaign's base seed by shard index — results
/// are a pure function of (spec, index), whatever thread runs them.
struct ShardSpec {
  int index = 0;
  CampaignSpec::TopologyAxis topology;
  std::string control;
  bool is_link_site = false;
  failure::Condition condition = failure::Condition::kC1;
  int link_site = -1;
  int replicate = 0;
  std::uint64_t seed = 0;  ///< sim::Random::derive_stream_seed(base, index)

  /// Site label: "C1".."C8" or "L<index>".
  std::string site() const;
};

/// Expands the spec into its shard list. `link_sites == -1` is resolved
/// against each topology (built once, off the simulation clock) so the
/// shard list itself stays deterministic.
std::vector<ShardSpec> enumerate_shards(const CampaignSpec& spec);

/// Outcome of one shard: identity, the paper's recovery metrics, and the
/// deterministic work accounting. `wall_seconds` is the only
/// non-deterministic field and is excluded from the deterministic JSON.
struct ShardResult {
  int index = 0;
  std::string topology;
  std::string control;
  std::string site;
  std::string site_class;
  int replicate = 0;
  std::uint64_t seed = 0;
  bool ok = false;       ///< scenario construction succeeded
  bool on_path = false;  ///< probe flow crossed a failed link
  sim::Time connectivity_loss = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_lost = 0;
  std::size_t events_executed = 0;
  double wall_seconds = 0;
  std::string scenario;
  /// Trace-derived recovery milestones (filled when spec.trace; -1 when
  /// the journal shows the milestone never happened). Relative to the
  /// failure instant, like Table III.
  std::size_t spans = 0;
  sim::Time detect_ns = -1;
  sim::Time converge_ns = -1;
  /// Sampler summary (filled when spec.sample_interval_ms > 0): retained
  /// rows and the network-wide queue-depth rollup.
  std::size_t samples = 0;
  double queue_p99 = 0;
  double queue_max = 0;
  /// Populated when the shard threw instead of completing: the exception
  /// message, recorded per shard so one poisoned axis value cannot abort
  /// the rest of the campaign. Emitted in the artifact only when
  /// non-empty (deterministic: the message depends on the spec, not on
  /// scheduling), with ok = false.
  std::string error;
};

/// Aggregate recovery statistics over one failure class (one
/// "<topology>/<control>/<site_class>" group, plus the "total" group).
/// Loss statistics are over affected runs (ok && on_path); the gap-loss
/// histogram buckets runs by packets lost: 0, 1-9, 10-99, 100-999, 1000+.
struct ClassAggregate {
  std::string key;
  int runs = 0;
  int affected = 0;  ///< ok && probe on-path
  int failed = 0;    ///< scenario construction failed
  double loss_ms_mean = 0;
  double loss_ms_p50 = 0;
  double loss_ms_p99 = 0;
  double loss_ms_max = 0;
  std::uint64_t packets_lost_total = 0;
  std::uint64_t gap_loss_hist[5] = {0, 0, 0, 0, 0};
};

std::vector<ClassAggregate> aggregate_runs(
    const std::vector<ShardResult>& runs);

/// Everything one campaign produces. The deterministic portion (spec,
/// per-run records in shard order, aggregates) is byte-identical for a
/// given spec whatever --jobs is; the profile (wall clock, thread counts)
/// is appended only in the full artifact.
struct CampaignResult {
  static constexpr int kSchemaVersion = 1;

  CampaignSpec spec;
  std::vector<ShardResult> runs;  ///< in shard-index order

  int jobs = 1;
  double wall_seconds = 0;
  unsigned hardware_threads = 0;
  std::uint64_t steals = 0;  ///< work-stealing pool diagnostics

  /// Writes the campaign JSON artifact. With `include_profile` false the
  /// output is the deterministic portion only — what the determinism
  /// tests and the --jobs cross-checks compare byte-for-byte.
  void write_json(std::ostream& os, bool include_profile = true) const;
};

}  // namespace f2t::core
