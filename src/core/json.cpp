#include "core/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace f2t::core::json {

namespace {

[[noreturn]] void fail_kind(const char* want, Value::Kind got) {
  throw std::invalid_argument(std::string("json: expected ") + want +
                              ", got kind " +
                              std::to_string(static_cast<int>(got)));
}

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at byte " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
    }
    pos_ += word.size();
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't': expect_word("true"); return Value::make_bool(true);
      case 'f': expect_word("false"); return Value::make_bool(false);
      case 'n': expect_word("null"); return Value::make_null();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::vector<std::pair<std::string, Value>> members;
    skip_ws();
    if (consume('}')) return Value::make_object(std::move(members));
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return Value::make_object(std::move(members));
    }
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_ws();
    if (consume(']')) return Value::make_array(std::move(items));
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return Value::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(parse_hex4(), out); break;
        default: fail("unknown escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return code;
  }

  /// Encodes a BMP code point (surrogate pairs are not needed by any spec
  /// this repo reads; lone surrogates encode as-is, matching lenient
  /// parsers).
  static void append_utf8(unsigned code, std::string& out) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xe0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double value = 0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) {
      pos_ = start;
      fail("malformed number");
    }
    return Value::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) fail_kind("bool", kind_);
  return bool_;
}

double Value::as_double() const {
  if (kind_ != Kind::kNumber) fail_kind("number", kind_);
  return number_;
}

std::int64_t Value::as_int() const {
  const double d = as_double();
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    throw std::invalid_argument("json: expected an integer, got " +
                                std::to_string(d));
  }
  return i;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) fail_kind("string", kind_);
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::kArray) fail_kind("array", kind_);
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object() const {
  if (kind_ != Kind::kObject) fail_kind("object", kind_);
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw std::invalid_argument("json: missing required key \"" +
                                std::string(key) + "\"");
  }
  return *v;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_double();
}

std::int64_t Value::int_or(std::string_view key, std::int64_t fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_int();
}

std::string Value::string_or(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

bool Value::bool_or(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace f2t::core::json
