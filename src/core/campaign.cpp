#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/runner.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/percentile.hpp"

namespace f2t::core {

namespace {

/// Stream id used to decorrelate a survivability shard's link draw from
/// the simulation stream that runs it (both derive from the shard seed).
constexpr std::uint64_t kRandomSiteDrawStream = 0x5117eed;

failure::Condition parse_condition_name(const std::string& text) {
  for (const auto c :
       {failure::Condition::kC1, failure::Condition::kC2,
        failure::Condition::kC3, failure::Condition::kC4,
        failure::Condition::kC5, failure::Condition::kC6,
        failure::Condition::kC7, failure::Condition::kC8}) {
    if (text == failure::condition_name(c)) return c;
  }
  throw std::invalid_argument("campaign: unknown condition \"" + text + "\"");
}

void check_known_keys(const json::Value& obj,
                      std::initializer_list<std::string_view> known,
                      const char* where) {
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument(std::string("campaign: unknown key \"") +
                                  key + "\" in " + where);
    }
  }
}

/// Deterministic double rendering for the campaign artifact (shortest
/// form up to 10 significant digits; -0 normalised).
std::string fmt(double v) {
  if (v == 0) return "0";
  std::ostringstream os;
  os << std::setprecision(10) << v;
  return os.str();
}

/// Exact double rendering for the worker-protocol JSONL records: 17
/// significant digits round-trip any finite double bit-for-bit, so a
/// value that crossed a worker stream re-renders through fmt()
/// identically to one that never left the process.
std::string fmt_exact(double v) {
  if (v == 0) return "0";
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

}  // namespace

std::string CampaignSpec::TopologyAxis::label() const {
  return name + "-" + std::to_string(ports);
}

CampaignSpec CampaignSpec::parse(std::string_view text) {
  return from_json(json::parse(text));
}

CampaignSpec CampaignSpec::from_json(const json::Value& doc) {
  check_known_keys(doc,
                   {"name", "topologies", "controls", "conditions",
                    "link_sites", "seeds", "base_seed", "detection_ms",
                    "spf_ms", "fail_at_ms", "horizon_ms", "detection",
                    "bfd_tx_ms", "bfd_multiplier", "dampening", "fault",
                    "gray_loss", "flap_period_ms", "flap_cycles", "fidelity",
                    "trace", "sample_interval_ms", "random_sites", "workload"},
                   "spec");
  CampaignSpec spec;
  spec.name = doc.string_or("name", spec.name);

  const json::Value& topologies = doc.at("topologies");
  for (const json::Value& t : topologies.as_array()) {
    check_known_keys(t, {"name", "ports", "ring_width", "aspen_f"},
                     "topologies[]");
    TopologyAxis axis;
    axis.name = t.at("name").as_string();
    axis.ports = static_cast<int>(t.at("ports").as_int());
    axis.ring_width = static_cast<int>(t.int_or("ring_width", 2));
    axis.aspen_f = static_cast<int>(t.int_or("aspen_f", 1));
    spec.topologies.push_back(std::move(axis));
  }
  if (spec.topologies.empty()) {
    throw std::invalid_argument("campaign: empty \"topologies\"");
  }

  if (const json::Value* controls = doc.find("controls")) {
    for (const json::Value& c : controls->as_array()) {
      const std::string& name = c.as_string();
      if (name != "ospf" && name != "central" && name != "bgp") {
        throw std::invalid_argument("campaign: unknown control \"" + name +
                                    "\"");
      }
      spec.controls.push_back(name);
    }
  }
  if (spec.controls.empty()) spec.controls = {"ospf"};

  if (const json::Value* conditions = doc.find("conditions")) {
    if (conditions->is_string() && conditions->as_string() == "all") {
      spec.conditions = {failure::Condition::kC1, failure::Condition::kC2,
                         failure::Condition::kC3, failure::Condition::kC4,
                         failure::Condition::kC5, failure::Condition::kC6,
                         failure::Condition::kC7};
    } else {
      for (const json::Value& c : conditions->as_array()) {
        spec.conditions.push_back(parse_condition_name(c.as_string()));
      }
    }
  }

  if (const json::Value* sites = doc.find("link_sites")) {
    if (sites->is_string() && sites->as_string() == "all") {
      spec.link_sites = -1;
    } else {
      spec.link_sites = static_cast<int>(sites->as_int());
      if (spec.link_sites < 0) {
        throw std::invalid_argument("campaign: negative link_sites");
      }
    }
  }
  spec.seeds = static_cast<int>(doc.int_or("seeds", 1));
  if (spec.seeds < 1) throw std::invalid_argument("campaign: seeds < 1");
  spec.base_seed = static_cast<std::uint64_t>(doc.int_or("base_seed", 1));
  spec.detection_ms = static_cast<int>(doc.int_or("detection_ms", 60));
  spec.spf_ms = static_cast<int>(doc.int_or("spf_ms", 200));
  spec.fail_at = sim::millis(doc.int_or("fail_at_ms", 380));
  spec.horizon = sim::millis(doc.int_or("horizon_ms", 3000));
  if (spec.horizon <= spec.fail_at) {
    throw std::invalid_argument("campaign: horizon_ms <= fail_at_ms");
  }

  spec.detection = doc.string_or("detection", spec.detection);
  if (spec.detection != "oracle" && spec.detection != "probe") {
    throw std::invalid_argument("campaign: unknown detection \"" +
                                spec.detection + "\" (oracle|probe)");
  }
  spec.bfd_tx_ms = static_cast<int>(doc.int_or("bfd_tx_ms", spec.bfd_tx_ms));
  spec.bfd_multiplier =
      static_cast<int>(doc.int_or("bfd_multiplier", spec.bfd_multiplier));
  if (spec.bfd_tx_ms < 1 || spec.bfd_multiplier < 1) {
    throw std::invalid_argument("campaign: bfd_tx_ms/bfd_multiplier < 1");
  }
  spec.dampening = doc.bool_or("dampening", spec.dampening);
  if (const json::Value* fault = doc.find("fault")) {
    const auto kind = failure::parse_fault_kind(fault->as_string());
    if (!kind) {
      throw std::invalid_argument("campaign: unknown fault \"" +
                                  fault->as_string() +
                                  "\" (cut|unidir|gray|flap)");
    }
    spec.fault = *kind;
  }
  spec.gray_loss = doc.number_or("gray_loss", spec.gray_loss);
  if (spec.gray_loss < 0 || spec.gray_loss > 1) {
    throw std::invalid_argument("campaign: gray_loss outside [0, 1]");
  }
  spec.flap_period_ms =
      static_cast<int>(doc.int_or("flap_period_ms", spec.flap_period_ms));
  spec.flap_cycles =
      static_cast<int>(doc.int_or("flap_cycles", spec.flap_cycles));
  if (spec.flap_period_ms < 1 || spec.flap_cycles < 1) {
    throw std::invalid_argument("campaign: flap_period_ms/flap_cycles < 1");
  }
  spec.fidelity = doc.string_or("fidelity", spec.fidelity);
  if (spec.fidelity != "packet" && spec.fidelity != "flow") {
    throw std::invalid_argument("campaign: unknown fidelity \"" +
                                spec.fidelity + "\" (packet|flow)");
  }
  spec.trace = doc.bool_or("trace", spec.trace);
  spec.sample_interval_ms = static_cast<int>(
      doc.int_or("sample_interval_ms", spec.sample_interval_ms));
  if (spec.sample_interval_ms < 0) {
    throw std::invalid_argument("campaign: negative sample_interval_ms");
  }
  spec.random_sites =
      static_cast<int>(doc.int_or("random_sites", spec.random_sites));
  if (spec.random_sites < 0) {
    throw std::invalid_argument("campaign: negative random_sites");
  }
  if (const json::Value* workload = doc.find("workload")) {
    check_known_keys(*workload,
                     {"kind", "size_dist", "load", "fanin", "flow_bytes",
                      "deadline_ms"},
                     "workload");
    WorkloadAxis& wl = spec.workload;
    wl.enabled = true;
    wl.kind = workload->string_or("kind", wl.kind);
    if (wl.kind != "poisson" && wl.kind != "incast") {
      throw std::invalid_argument("campaign: unknown workload kind \"" +
                                  wl.kind + "\" (poisson|incast)");
    }
    wl.size_dist = workload->string_or("size_dist", wl.size_dist);
    if (wl.size_dist != "websearch" && wl.size_dist != "datamining") {
      throw std::invalid_argument("campaign: unknown workload size_dist \"" +
                                  wl.size_dist +
                                  "\" (websearch|datamining)");
    }
    wl.load = workload->number_or("load", wl.load);
    if (!(wl.load > 0) || wl.load > 1) {
      throw std::invalid_argument("campaign: workload load outside (0, 1]");
    }
    wl.fanin = static_cast<int>(workload->int_or("fanin", wl.fanin));
    if (wl.fanin < 1) {
      throw std::invalid_argument("campaign: workload fanin < 1");
    }
    wl.flow_bytes = static_cast<std::uint64_t>(workload->int_or(
        "flow_bytes", static_cast<std::int64_t>(wl.flow_bytes)));
    if (wl.flow_bytes < 1) {
      throw std::invalid_argument("campaign: workload flow_bytes < 1");
    }
    wl.deadline_ms =
        static_cast<int>(workload->int_or("deadline_ms", wl.deadline_ms));
    if (wl.deadline_ms < 0) {
      throw std::invalid_argument("campaign: negative workload deadline_ms");
    }
    if (spec.fidelity == "flow") {
      throw std::invalid_argument(
          "campaign: workload requires packet fidelity (the fluid probe "
          "has no host stacks to carry TCP flows)");
    }
  }
  if (spec.conditions.empty() && spec.link_sites == 0 &&
      spec.random_sites == 0) {
    throw std::invalid_argument(
        "campaign: no failure sites (need conditions, link_sites and/or "
        "random_sites)");
  }
  return spec;
}

void CampaignSpec::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << "{\n" << pad << "  \"name\": \"" << json::escape(name) << "\",\n";
  os << pad << "  \"topologies\": [";
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    const TopologyAxis& t = topologies[i];
    os << (i ? ", " : "") << "{\"name\": \"" << json::escape(t.name)
       << "\", \"ports\": " << t.ports << ", \"ring_width\": " << t.ring_width
       << ", \"aspen_f\": " << t.aspen_f << "}";
  }
  os << "],\n" << pad << "  \"controls\": [";
  for (std::size_t i = 0; i < controls.size(); ++i) {
    os << (i ? ", " : "") << "\"" << controls[i] << "\"";
  }
  os << "],\n" << pad << "  \"conditions\": [";
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    os << (i ? ", " : "") << "\"" << failure::condition_name(conditions[i])
       << "\"";
  }
  os << "],\n"
     << pad << "  \"link_sites\": " << link_sites << ",\n"
     << pad << "  \"seeds\": " << seeds << ",\n"
     << pad << "  \"base_seed\": " << base_seed << ",\n"
     << pad << "  \"detection_ms\": " << detection_ms << ",\n"
     << pad << "  \"spf_ms\": " << spf_ms << ",\n"
     << pad << "  \"fail_at_ms\": " << sim::to_millis(fail_at) << ",\n"
     << pad << "  \"horizon_ms\": " << sim::to_millis(horizon);
  // Detection/fault axes appear only when they differ from the defaults,
  // so a spec that predates them echoes byte-identically.
  const CampaignSpec defaults;
  if (detection != defaults.detection) {
    os << ",\n" << pad << "  \"detection\": \"" << detection << "\"";
  }
  if (bfd_tx_ms != defaults.bfd_tx_ms) {
    os << ",\n" << pad << "  \"bfd_tx_ms\": " << bfd_tx_ms;
  }
  if (bfd_multiplier != defaults.bfd_multiplier) {
    os << ",\n" << pad << "  \"bfd_multiplier\": " << bfd_multiplier;
  }
  if (dampening != defaults.dampening) {
    os << ",\n" << pad << "  \"dampening\": " << (dampening ? "true" : "false");
  }
  if (fault != defaults.fault) {
    os << ",\n"
       << pad << "  \"fault\": \"" << failure::fault_kind_name(fault) << "\"";
  }
  if (gray_loss != defaults.gray_loss) {
    os << ",\n" << pad << "  \"gray_loss\": " << fmt(gray_loss);
  }
  if (flap_period_ms != defaults.flap_period_ms) {
    os << ",\n" << pad << "  \"flap_period_ms\": " << flap_period_ms;
  }
  if (flap_cycles != defaults.flap_cycles) {
    os << ",\n" << pad << "  \"flap_cycles\": " << flap_cycles;
  }
  if (fidelity != defaults.fidelity) {
    os << ",\n" << pad << "  \"fidelity\": \"" << fidelity << "\"";
  }
  if (trace != defaults.trace) {
    os << ",\n" << pad << "  \"trace\": " << (trace ? "true" : "false");
  }
  if (sample_interval_ms != defaults.sample_interval_ms) {
    os << ",\n"
       << pad << "  \"sample_interval_ms\": " << sample_interval_ms;
  }
  if (random_sites != defaults.random_sites) {
    os << ",\n" << pad << "  \"random_sites\": " << random_sites;
  }
  if (workload.enabled) {
    os << ",\n"
       << pad << "  \"workload\": {\"kind\": \"" << workload.kind
       << "\", \"size_dist\": \"" << workload.size_dist
       << "\", \"load\": " << fmt(workload.load)
       << ", \"fanin\": " << workload.fanin
       << ", \"flow_bytes\": " << workload.flow_bytes
       << ", \"deadline_ms\": " << workload.deadline_ms << "}";
  }
  os << "\n" << pad << "}";
}

std::string ShardSpec::site() const {
  if (random_site >= 0) return "R" + std::to_string(random_site);
  return is_link_site ? "L" + std::to_string(link_site)
                      : failure::condition_name(condition);
}

std::vector<ShardSpec> enumerate_shards(const CampaignSpec& spec) {
  std::vector<ShardSpec> shards;
  for (const auto& topology : spec.topologies) {
    // Resolve the topology's failure-site universe off the simulation
    // clock; construction order is deterministic for a given axis.
    int sites = spec.link_sites;
    int all_links = 0;
    if (sites != 0 || spec.random_sites > 0) {
      sim::Simulator sim(1);
      net::Network net(sim);
      const auto built = topology_builder(topology.name, topology.ports,
                                          topology.ring_width,
                                          topology.aspen_f)(net);
      all_links = static_cast<int>(failure::switch_links(built).size());
      sites = sites < 0 ? all_links : std::min(sites, all_links);
    }
    for (const auto& control : spec.controls) {
      const auto add = [&](bool is_link, failure::Condition condition,
                           int link_site, int random_site) {
        for (int replicate = 0; replicate < spec.seeds; ++replicate) {
          ShardSpec shard;
          shard.index = static_cast<int>(shards.size());
          shard.topology = topology;
          shard.control = control;
          shard.is_link_site = is_link;
          shard.condition = condition;
          shard.link_site = link_site;
          shard.replicate = replicate;
          shard.random_site = random_site;
          shard.seed = sim::Random::derive_stream_seed(
              spec.base_seed, static_cast<std::uint64_t>(shard.index));
          if (random_site >= 0 && all_links > 0) {
            // Survivability draw: the failed link is a pure function of
            // the shard's derived seed (decorrelated from the run
            // stream), so workers re-enumerating the spec see the same
            // failure process whatever process runs the shard.
            sim::Random draw(sim::Random::derive_stream_seed(
                shard.seed, kRandomSiteDrawStream));
            shard.link_site = static_cast<int>(
                draw.index(static_cast<std::size_t>(all_links)));
          }
          shards.push_back(std::move(shard));
        }
      };
      for (const failure::Condition condition : spec.conditions) {
        add(false, condition, -1, -1);
      }
      for (int site = 0; site < sites; ++site) {
        add(true, failure::Condition::kC1, site, -1);
      }
      for (int draw = 0; draw < spec.random_sites; ++draw) {
        add(true, failure::Condition::kC1, -1, draw);
      }
    }
  }
  return shards;
}

std::vector<ClassAggregate> aggregate_runs(
    const std::vector<ShardResult>& runs) {
  // Group deterministically by key; "total" spans every run.
  std::vector<std::string> keys{"total"};
  for (const ShardResult& r : runs) {
    const std::string key = r.topology + "/" + r.control + "/" +
                            (r.site_class.empty() ? r.site : r.site_class);
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin() + 1, keys.end());

  std::vector<ClassAggregate> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    ClassAggregate agg;
    agg.key = key;
    std::vector<double> losses_ms;
    for (const ShardResult& r : runs) {
      const std::string rkey = r.topology + "/" + r.control + "/" +
                               (r.site_class.empty() ? r.site : r.site_class);
      if (key != "total" && rkey != key) continue;
      ++agg.runs;
      if (!r.ok) {
        ++agg.failed;
        continue;
      }
      if (!r.on_path) continue;
      ++agg.affected;
      losses_ms.push_back(sim::to_millis(r.connectivity_loss));
      agg.packets_lost_total += r.packets_lost;
      const std::uint64_t lost = r.packets_lost;
      const int bucket = lost == 0 ? 0
                         : lost < 10 ? 1
                         : lost < 100 ? 2
                         : lost < 1000 ? 3
                                       : 4;
      ++agg.gap_loss_hist[bucket];
    }
    if (!losses_ms.empty()) {
      std::sort(losses_ms.begin(), losses_ms.end());
      double sum = 0;
      for (const double v : losses_ms) sum += v;
      agg.loss_ms_mean = sum / static_cast<double>(losses_ms.size());
      agg.loss_ms_p50 = stats::nearest_rank_sorted(losses_ms, 0.50);
      agg.loss_ms_p99 = stats::nearest_rank_sorted(losses_ms, 0.99);
      agg.loss_ms_max = losses_ms.back();
    }
    out.push_back(std::move(agg));
  }
  return out;
}

std::vector<SurvivabilityAggregate> aggregate_survivability(
    const std::vector<ShardResult>& runs, sim::Time window) {
  std::vector<std::string> keys;
  for (const ShardResult& r : runs) {
    if (r.site.empty() || r.site[0] != 'R') continue;
    const std::string key = r.topology + "/" + r.control;
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());

  std::vector<SurvivabilityAggregate> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    SurvivabilityAggregate agg;
    agg.key = key;
    std::vector<double> availability;
    int recovered[4] = {0, 0, 0, 0};
    int measured = 0;
    for (const ShardResult& r : runs) {
      if (r.site.empty() || r.site[0] != 'R') continue;
      if (r.topology + "/" + r.control != key) continue;
      ++agg.draws;
      if (!r.ok) {
        ++agg.failed;
        continue;
      }
      // A draw the probe flow never crossed is fully available: a random
      // failure that misses your path costs nothing, and that is part of
      // the survivability distribution, not noise to exclude.
      if (r.on_path) ++agg.affected;
      const double loss_ms = sim::to_millis(r.connectivity_loss);
      const double window_ms = sim::to_millis(window);
      availability.push_back(
          window_ms > 0
              ? std::max(0.0, 1.0 - loss_ms / window_ms)
              : 1.0);
      ++measured;
      for (int t = 0; t < 4; ++t) {
        if (loss_ms <= SurvivabilityAggregate::kReliabilityMs[t]) {
          ++recovered[t];
        }
      }
    }
    if (!availability.empty()) {
      std::sort(availability.begin(), availability.end());
      double sum = 0;
      for (const double v : availability) sum += v;
      agg.availability_mean = sum / static_cast<double>(availability.size());
      agg.availability_p50 = stats::nearest_rank_sorted(availability, 0.50);
      agg.availability_min = availability.front();
    }
    for (int t = 0; t < 4; ++t) {
      agg.reliability[t] =
          measured > 0
              ? static_cast<double>(recovered[t]) / measured
              : 0;
    }
    out.push_back(std::move(agg));
  }
  return out;
}

CampaignSpec survivability_spec(
    const std::vector<CampaignSpec::TopologyAxis>& topologies, int draws,
    std::uint64_t base_seed) {
  if (topologies.empty()) {
    throw std::invalid_argument("survivability_spec: no topologies");
  }
  if (draws < 1) {
    throw std::invalid_argument("survivability_spec: draws < 1");
  }
  CampaignSpec spec;
  spec.name = "survivability";
  spec.topologies = topologies;
  spec.controls = {"ospf"};
  spec.conditions.clear();
  spec.link_sites = 0;
  spec.random_sites = draws;
  spec.seeds = 1;
  spec.base_seed = base_seed;
  return spec;
}

// ---------------------------------------------------------------------
// Worker protocol: shard ranges, JSONL shard records, checkpoint
// manifest.

std::string format_shard_ranges(
    const std::vector<std::pair<int, int>>& ranges) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    os << (i ? "," : "") << ranges[i].first << ":" << ranges[i].second;
  }
  return os.str();
}

std::vector<std::pair<int, int>> parse_shard_ranges(std::string_view text) {
  std::vector<std::pair<int, int>> ranges;
  std::string token;
  std::istringstream in{std::string(text)};
  while (std::getline(in, token, ',')) {
    const auto colon = token.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("shard ranges: expected a:b, got '" +
                                  token + "'");
    }
    int a = 0;
    int b = 0;
    try {
      std::size_t used_a = 0;
      std::size_t used_b = 0;
      a = std::stoi(token.substr(0, colon), &used_a);
      b = std::stoi(token.substr(colon + 1), &used_b);
      if (used_a != colon || used_b != token.size() - colon - 1) {
        throw std::invalid_argument("trailing junk");
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("shard ranges: malformed range '" + token +
                                  "'");
    }
    if (a < 0 || b <= a) {
      throw std::invalid_argument("shard ranges: empty or negative range '" +
                                  token + "'");
    }
    ranges.emplace_back(a, b);
  }
  if (ranges.empty()) {
    throw std::invalid_argument("shard ranges: empty specification");
  }
  return ranges;
}

std::vector<std::pair<int, int>> contiguous_ranges(
    const std::vector<int>& sorted_indices) {
  std::vector<std::pair<int, int>> ranges;
  for (const int i : sorted_indices) {
    if (!ranges.empty() && ranges.back().second == i) {
      ++ranges.back().second;
    } else {
      ranges.emplace_back(i, i + 1);
    }
  }
  return ranges;
}

void write_shard_record(std::ostream& os, const ShardResult& r) {
  os << "{\"v\": 1, \"i\": " << r.index << ", \"topo\": \""
     << json::escape(r.topology) << "\", \"control\": \""
     << json::escape(r.control) << "\", \"site\": \"" << json::escape(r.site)
     << "\", \"class\": \"" << json::escape(r.site_class)
     << "\", \"rep\": " << r.replicate << ", \"seed\": \"" << r.seed
     << "\", \"ok\": " << (r.ok ? "true" : "false")
     << ", \"on_path\": " << (r.on_path ? "true" : "false")
     << ", \"loss_ns\": " << r.connectivity_loss
     << ", \"sent\": " << r.packets_sent << ", \"lost\": " << r.packets_lost
     << ", \"events\": " << r.events_executed
     << ", \"wall\": " << fmt_exact(r.wall_seconds) << ", \"scenario\": \""
     << json::escape(r.scenario) << "\", \"spans\": " << r.spans
     << ", \"detect_ns\": " << r.detect_ns
     << ", \"converge_ns\": " << r.converge_ns
     << ", \"samples\": " << r.samples;
  if (r.queue_rollup) {
    os << ", \"queue_p99\": " << fmt_exact(r.queue_p99)
       << ", \"queue_max\": " << fmt_exact(r.queue_max);
  }
  if (r.slo) {
    os << ", \"slo_flows\": " << r.slo_flows
       << ", \"slo_completed\": " << r.slo_completed
       << ", \"fct_p50_ms\": " << fmt_exact(r.fct_p50_ms)
       << ", \"fct_p99_ms\": " << fmt_exact(r.fct_p99_ms)
       << ", \"fct_p999_ms\": " << fmt_exact(r.fct_p999_ms)
       << ", \"dl_in\": " << r.slo_deadline_in
       << ", \"dl_out\": " << r.slo_deadline_out
       << ", \"miss_in\": " << fmt_exact(r.slo_miss_in)
       << ", \"miss_out\": " << fmt_exact(r.slo_miss_out);
  }
  if (!r.error.empty()) {
    os << ", \"error\": \"" << json::escape(r.error) << "\"";
  }
  os << "}\n";
}

ShardResult parse_shard_record(std::string_view line) {
  const json::Value doc = json::parse(line);
  if (doc.int_or("v", 0) != 1) {
    throw std::invalid_argument("shard record: unknown protocol version");
  }
  ShardResult r;
  r.index = static_cast<int>(doc.at("i").as_int());
  r.topology = doc.at("topo").as_string();
  r.control = doc.at("control").as_string();
  r.site = doc.at("site").as_string();
  r.site_class = doc.at("class").as_string();
  r.replicate = static_cast<int>(doc.at("rep").as_int());
  const std::string& seed_text = doc.at("seed").as_string();
  std::size_t used = 0;
  r.seed = std::stoull(seed_text, &used);
  if (used != seed_text.size()) {
    throw std::invalid_argument("shard record: malformed seed");
  }
  r.ok = doc.at("ok").as_bool();
  r.on_path = doc.at("on_path").as_bool();
  r.connectivity_loss = doc.at("loss_ns").as_int();
  r.packets_sent = static_cast<std::uint64_t>(doc.at("sent").as_int());
  r.packets_lost = static_cast<std::uint64_t>(doc.at("lost").as_int());
  r.events_executed = static_cast<std::size_t>(doc.at("events").as_int());
  r.wall_seconds = doc.at("wall").as_double();
  r.scenario = doc.at("scenario").as_string();
  r.spans = static_cast<std::size_t>(doc.at("spans").as_int());
  r.detect_ns = doc.at("detect_ns").as_int();
  r.converge_ns = doc.at("converge_ns").as_int();
  r.samples = static_cast<std::size_t>(doc.at("samples").as_int());
  if (const json::Value* p99 = doc.find("queue_p99")) {
    r.queue_rollup = true;
    r.queue_p99 = p99->as_double();
    r.queue_max = doc.at("queue_max").as_double();
  }
  if (const json::Value* slo_flows = doc.find("slo_flows")) {
    r.slo = true;
    r.slo_flows = static_cast<std::size_t>(slo_flows->as_int());
    r.slo_completed =
        static_cast<std::size_t>(doc.at("slo_completed").as_int());
    r.fct_p50_ms = doc.at("fct_p50_ms").as_double();
    r.fct_p99_ms = doc.at("fct_p99_ms").as_double();
    r.fct_p999_ms = doc.at("fct_p999_ms").as_double();
    r.slo_deadline_in = static_cast<std::size_t>(doc.at("dl_in").as_int());
    r.slo_deadline_out = static_cast<std::size_t>(doc.at("dl_out").as_int());
    r.slo_miss_in = doc.at("miss_in").as_double();
    r.slo_miss_out = doc.at("miss_out").as_double();
  }
  if (const json::Value* error = doc.find("error")) {
    r.error = error->as_string();
  }
  return r;
}

void CheckpointManifest::write_json(std::ostream& os) const {
  os << "{\n  \"schema_version\": " << kSchemaVersion
     << ",\n  \"kind\": \"f2t-campaign-checkpoint\",\n  \"shards\": "
     << shards << ",\n  \"workers\": " << workers << ",\n  \"spec\": ";
  spec.write_json(os, 2);
  os << "\n}\n";
}

CheckpointManifest CheckpointManifest::parse(std::string_view text) {
  const json::Value doc = json::parse(text);
  if (doc.int_or("schema_version", 0) != kSchemaVersion ||
      doc.string_or("kind", "") != "f2t-campaign-checkpoint") {
    throw std::invalid_argument(
        "checkpoint manifest: bad schema_version/kind");
  }
  CheckpointManifest m;
  m.shards = static_cast<int>(doc.at("shards").as_int());
  m.workers = static_cast<int>(doc.at("workers").as_int());
  m.spec = CampaignSpec::from_json(doc.at("spec"));
  if (m.shards < 1 || m.workers < 1) {
    throw std::invalid_argument("checkpoint manifest: shards/workers < 1");
  }
  return m;
}

void CampaignResult::write_json(std::ostream& os,
                                bool include_profile) const {
  os << "{\n  \"schema_version\": " << kSchemaVersion
     << ",\n  \"kind\": \"f2t-campaign\",\n  \"spec\": ";
  spec.write_json(os, 2);
  os << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ShardResult& r = runs[i];
    os << "    {\"i\": " << r.index << ", \"topo\": \""
       << json::escape(r.topology) << "\", \"control\": \"" << r.control
       << "\", \"site\": \"" << json::escape(r.site) << "\", \"class\": \""
       << json::escape(r.site_class) << "\", \"rep\": " << r.replicate
       << ", \"seed\": \"" << r.seed << "\", \"ok\": "
       << (r.ok ? "true" : "false")
       << ", \"on_path\": " << (r.on_path ? "true" : "false")
       << ", \"loss_ns\": " << r.connectivity_loss
       << ", \"sent\": " << r.packets_sent << ", \"lost\": " << r.packets_lost
       << ", \"events\": " << r.events_executed;
    // Observability fields ride along only when the spec asked for the
    // corresponding axis — the emission condition is the *spec*, not the
    // per-run values, so the record shape is uniform and deterministic.
    if (spec.trace) {
      os << ", \"spans\": " << r.spans << ", \"detect_ns\": " << r.detect_ns
         << ", \"converge_ns\": " << r.converge_ns;
    }
    if (spec.sample_interval_ms > 0) {
      os << ", \"samples\": " << r.samples;
      // The queue rollup is emitted only when the sampler actually
      // retained rows with a queue-depth series; a missing rollup is an
      // omitted key, not a fabricated 0.
      if (r.queue_rollup) {
        os << ", \"queue_p99\": " << fmt(r.queue_p99)
           << ", \"queue_max\": " << fmt(r.queue_max);
      }
    }
    if (spec.workload.enabled && r.slo) {
      os << ", \"slo_flows\": " << r.slo_flows
         << ", \"slo_completed\": " << r.slo_completed
         << ", \"fct_p50_ms\": " << fmt(r.fct_p50_ms)
         << ", \"fct_p99_ms\": " << fmt(r.fct_p99_ms)
         << ", \"fct_p999_ms\": " << fmt(r.fct_p999_ms)
         << ", \"dl_in\": " << r.slo_deadline_in
         << ", \"dl_out\": " << r.slo_deadline_out
         << ", \"miss_in\": " << fmt(r.slo_miss_in)
         << ", \"miss_out\": " << fmt(r.slo_miss_out);
    }
    if (!r.error.empty()) {
      os << ", \"error\": \"" << json::escape(r.error) << "\"";
    }
    os << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"aggregates\": [\n";
  const auto aggregates = aggregate_runs(runs);
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    const ClassAggregate& a = aggregates[i];
    os << "    {\"class\": \"" << json::escape(a.key)
       << "\", \"runs\": " << a.runs << ", \"affected\": " << a.affected
       << ", \"failed\": " << a.failed << ", \"loss_ms_mean\": "
       << fmt(a.loss_ms_mean) << ", \"loss_ms_p50\": " << fmt(a.loss_ms_p50)
       << ", \"loss_ms_p99\": " << fmt(a.loss_ms_p99)
       << ", \"loss_ms_max\": " << fmt(a.loss_ms_max)
       << ", \"packets_lost\": " << a.packets_lost_total
       << ", \"gap_loss_hist\": [";
    for (int b = 0; b < 5; ++b) {
      os << (b ? ", " : "") << a.gap_loss_hist[b];
    }
    os << "]}" << (i + 1 < aggregates.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (spec.random_sites > 0) {
    const auto surv =
        aggregate_survivability(runs, spec.horizon - spec.fail_at);
    os << ",\n  \"survivability\": {\"reliability_ms\": [";
    for (int t = 0; t < 4; ++t) {
      os << (t ? ", " : "") << SurvivabilityAggregate::kReliabilityMs[t];
    }
    os << "], \"groups\": [\n";
    for (std::size_t i = 0; i < surv.size(); ++i) {
      const SurvivabilityAggregate& a = surv[i];
      os << "    {\"class\": \"" << json::escape(a.key)
         << "\", \"draws\": " << a.draws << ", \"affected\": " << a.affected
         << ", \"failed\": " << a.failed << ", \"availability_mean\": "
         << fmt(a.availability_mean) << ", \"availability_p50\": "
         << fmt(a.availability_p50) << ", \"availability_min\": "
         << fmt(a.availability_min) << ", \"reliability\": [";
      for (int t = 0; t < 4; ++t) {
        os << (t ? ", " : "") << fmt(a.reliability[t]);
      }
      os << "]}" << (i + 1 < surv.size() ? "," : "") << "\n";
    }
    os << "  ]}";
  }
  if (spec.workload.enabled) {
    // Campaign-level SLO rollup over the shards that carried the
    // workload: flow totals, the mean/max of the per-run FCT tail
    // percentiles, and the *pooled* deadline-miss fractions (weighted by
    // each run's deadline-bearing flow count — a run with 10x the flows
    // moves the pooled fraction 10x as much).
    int slo_runs = 0;
    std::size_t flows = 0;
    std::size_t completed = 0;
    std::size_t dl_in = 0;
    std::size_t dl_out = 0;
    double missed_in = 0;
    double missed_out = 0;
    double p50_sum = 0;
    double p99_sum = 0;
    double p999_sum = 0;
    double p99_max = 0;
    double p999_max = 0;
    for (const ShardResult& r : runs) {
      if (!r.slo) continue;
      ++slo_runs;
      flows += r.slo_flows;
      completed += r.slo_completed;
      dl_in += r.slo_deadline_in;
      dl_out += r.slo_deadline_out;
      missed_in += r.slo_miss_in * static_cast<double>(r.slo_deadline_in);
      missed_out += r.slo_miss_out * static_cast<double>(r.slo_deadline_out);
      p50_sum += r.fct_p50_ms;
      p99_sum += r.fct_p99_ms;
      p999_sum += r.fct_p999_ms;
      p99_max = std::max(p99_max, r.fct_p99_ms);
      p999_max = std::max(p999_max, r.fct_p999_ms);
    }
    const double n = slo_runs > 0 ? static_cast<double>(slo_runs) : 1;
    os << ",\n  \"slo\": {\"runs\": " << slo_runs << ", \"flows\": " << flows
       << ", \"completed\": " << completed
       << ", \"fct_p50_ms_mean\": " << fmt(p50_sum / n)
       << ", \"fct_p99_ms_mean\": " << fmt(p99_sum / n)
       << ", \"fct_p999_ms_mean\": " << fmt(p999_sum / n)
       << ", \"fct_p99_ms_max\": " << fmt(p99_max)
       << ", \"fct_p999_ms_max\": " << fmt(p999_max)
       << ", \"deadline_flows_in\": " << dl_in
       << ", \"deadline_flows_out\": " << dl_out << ", \"miss_in\": "
       << fmt(dl_in > 0 ? missed_in / static_cast<double>(dl_in) : 0)
       << ", \"miss_out\": "
       << fmt(dl_out > 0 ? missed_out / static_cast<double>(dl_out) : 0)
       << "}";
  }
  if (include_profile) {
    double shard_wall = 0;
    std::size_t events = 0;
    for (const ShardResult& r : runs) {
      shard_wall += r.wall_seconds;
      events += r.events_executed;
    }
    os << ",\n  \"profile\": {\"jobs\": " << jobs;
    if (workers > 0) os << ", \"workers\": " << workers;
    os << ", \"wall_seconds\": "
       << fmt(wall_seconds) << ", \"shard_wall_seconds\": " << fmt(shard_wall)
       << ", \"events_executed\": " << events
       << ", \"runs_per_second\": "
       << fmt(wall_seconds > 0 ? static_cast<double>(runs.size()) /
                                     wall_seconds
                               : 0)
       << ", \"hardware_threads\": " << hardware_threads
       << ", \"steals\": " << steals << "}";
  }
  os << "\n}\n";
}

}  // namespace f2t::core
