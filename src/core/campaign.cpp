#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/runner.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace f2t::core {

namespace {

failure::Condition parse_condition_name(const std::string& text) {
  for (const auto c :
       {failure::Condition::kC1, failure::Condition::kC2,
        failure::Condition::kC3, failure::Condition::kC4,
        failure::Condition::kC5, failure::Condition::kC6,
        failure::Condition::kC7, failure::Condition::kC8}) {
    if (text == failure::condition_name(c)) return c;
  }
  throw std::invalid_argument("campaign: unknown condition \"" + text + "\"");
}

void check_known_keys(const json::Value& obj,
                      std::initializer_list<std::string_view> known,
                      const char* where) {
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument(std::string("campaign: unknown key \"") +
                                  key + "\" in " + where);
    }
  }
}

/// Deterministic double rendering for the campaign artifact (shortest
/// form up to 10 significant digits; -0 normalised).
std::string fmt(double v) {
  if (v == 0) return "0";
  std::ostringstream os;
  os << std::setprecision(10) << v;
  return os.str();
}

}  // namespace

std::string CampaignSpec::TopologyAxis::label() const {
  return name + "-" + std::to_string(ports);
}

CampaignSpec CampaignSpec::parse(std::string_view text) {
  return from_json(json::parse(text));
}

CampaignSpec CampaignSpec::from_json(const json::Value& doc) {
  check_known_keys(doc,
                   {"name", "topologies", "controls", "conditions",
                    "link_sites", "seeds", "base_seed", "detection_ms",
                    "spf_ms", "fail_at_ms", "horizon_ms", "detection",
                    "bfd_tx_ms", "bfd_multiplier", "dampening", "fault",
                    "gray_loss", "flap_period_ms", "flap_cycles", "fidelity",
                    "trace", "sample_interval_ms"},
                   "spec");
  CampaignSpec spec;
  spec.name = doc.string_or("name", spec.name);

  const json::Value& topologies = doc.at("topologies");
  for (const json::Value& t : topologies.as_array()) {
    check_known_keys(t, {"name", "ports", "ring_width", "aspen_f"},
                     "topologies[]");
    TopologyAxis axis;
    axis.name = t.at("name").as_string();
    axis.ports = static_cast<int>(t.at("ports").as_int());
    axis.ring_width = static_cast<int>(t.int_or("ring_width", 2));
    axis.aspen_f = static_cast<int>(t.int_or("aspen_f", 1));
    spec.topologies.push_back(std::move(axis));
  }
  if (spec.topologies.empty()) {
    throw std::invalid_argument("campaign: empty \"topologies\"");
  }

  if (const json::Value* controls = doc.find("controls")) {
    for (const json::Value& c : controls->as_array()) {
      const std::string& name = c.as_string();
      if (name != "ospf" && name != "central" && name != "bgp") {
        throw std::invalid_argument("campaign: unknown control \"" + name +
                                    "\"");
      }
      spec.controls.push_back(name);
    }
  }
  if (spec.controls.empty()) spec.controls = {"ospf"};

  if (const json::Value* conditions = doc.find("conditions")) {
    if (conditions->is_string() && conditions->as_string() == "all") {
      spec.conditions = {failure::Condition::kC1, failure::Condition::kC2,
                         failure::Condition::kC3, failure::Condition::kC4,
                         failure::Condition::kC5, failure::Condition::kC6,
                         failure::Condition::kC7};
    } else {
      for (const json::Value& c : conditions->as_array()) {
        spec.conditions.push_back(parse_condition_name(c.as_string()));
      }
    }
  }

  if (const json::Value* sites = doc.find("link_sites")) {
    if (sites->is_string() && sites->as_string() == "all") {
      spec.link_sites = -1;
    } else {
      spec.link_sites = static_cast<int>(sites->as_int());
      if (spec.link_sites < 0) {
        throw std::invalid_argument("campaign: negative link_sites");
      }
    }
  }
  if (spec.conditions.empty() && spec.link_sites == 0) {
    throw std::invalid_argument(
        "campaign: no failure sites (need conditions and/or link_sites)");
  }

  spec.seeds = static_cast<int>(doc.int_or("seeds", 1));
  if (spec.seeds < 1) throw std::invalid_argument("campaign: seeds < 1");
  spec.base_seed = static_cast<std::uint64_t>(doc.int_or("base_seed", 1));
  spec.detection_ms = static_cast<int>(doc.int_or("detection_ms", 60));
  spec.spf_ms = static_cast<int>(doc.int_or("spf_ms", 200));
  spec.fail_at = sim::millis(doc.int_or("fail_at_ms", 380));
  spec.horizon = sim::millis(doc.int_or("horizon_ms", 3000));
  if (spec.horizon <= spec.fail_at) {
    throw std::invalid_argument("campaign: horizon_ms <= fail_at_ms");
  }

  spec.detection = doc.string_or("detection", spec.detection);
  if (spec.detection != "oracle" && spec.detection != "probe") {
    throw std::invalid_argument("campaign: unknown detection \"" +
                                spec.detection + "\" (oracle|probe)");
  }
  spec.bfd_tx_ms = static_cast<int>(doc.int_or("bfd_tx_ms", spec.bfd_tx_ms));
  spec.bfd_multiplier =
      static_cast<int>(doc.int_or("bfd_multiplier", spec.bfd_multiplier));
  if (spec.bfd_tx_ms < 1 || spec.bfd_multiplier < 1) {
    throw std::invalid_argument("campaign: bfd_tx_ms/bfd_multiplier < 1");
  }
  spec.dampening = doc.bool_or("dampening", spec.dampening);
  if (const json::Value* fault = doc.find("fault")) {
    const auto kind = failure::parse_fault_kind(fault->as_string());
    if (!kind) {
      throw std::invalid_argument("campaign: unknown fault \"" +
                                  fault->as_string() +
                                  "\" (cut|unidir|gray|flap)");
    }
    spec.fault = *kind;
  }
  spec.gray_loss = doc.number_or("gray_loss", spec.gray_loss);
  if (spec.gray_loss < 0 || spec.gray_loss > 1) {
    throw std::invalid_argument("campaign: gray_loss outside [0, 1]");
  }
  spec.flap_period_ms =
      static_cast<int>(doc.int_or("flap_period_ms", spec.flap_period_ms));
  spec.flap_cycles =
      static_cast<int>(doc.int_or("flap_cycles", spec.flap_cycles));
  if (spec.flap_period_ms < 1 || spec.flap_cycles < 1) {
    throw std::invalid_argument("campaign: flap_period_ms/flap_cycles < 1");
  }
  spec.fidelity = doc.string_or("fidelity", spec.fidelity);
  if (spec.fidelity != "packet" && spec.fidelity != "flow") {
    throw std::invalid_argument("campaign: unknown fidelity \"" +
                                spec.fidelity + "\" (packet|flow)");
  }
  spec.trace = doc.bool_or("trace", spec.trace);
  spec.sample_interval_ms = static_cast<int>(
      doc.int_or("sample_interval_ms", spec.sample_interval_ms));
  if (spec.sample_interval_ms < 0) {
    throw std::invalid_argument("campaign: negative sample_interval_ms");
  }
  return spec;
}

void CampaignSpec::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << "{\n" << pad << "  \"name\": \"" << json::escape(name) << "\",\n";
  os << pad << "  \"topologies\": [";
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    const TopologyAxis& t = topologies[i];
    os << (i ? ", " : "") << "{\"name\": \"" << json::escape(t.name)
       << "\", \"ports\": " << t.ports << ", \"ring_width\": " << t.ring_width
       << ", \"aspen_f\": " << t.aspen_f << "}";
  }
  os << "],\n" << pad << "  \"controls\": [";
  for (std::size_t i = 0; i < controls.size(); ++i) {
    os << (i ? ", " : "") << "\"" << controls[i] << "\"";
  }
  os << "],\n" << pad << "  \"conditions\": [";
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    os << (i ? ", " : "") << "\"" << failure::condition_name(conditions[i])
       << "\"";
  }
  os << "],\n"
     << pad << "  \"link_sites\": " << link_sites << ",\n"
     << pad << "  \"seeds\": " << seeds << ",\n"
     << pad << "  \"base_seed\": " << base_seed << ",\n"
     << pad << "  \"detection_ms\": " << detection_ms << ",\n"
     << pad << "  \"spf_ms\": " << spf_ms << ",\n"
     << pad << "  \"fail_at_ms\": " << sim::to_millis(fail_at) << ",\n"
     << pad << "  \"horizon_ms\": " << sim::to_millis(horizon);
  // Detection/fault axes appear only when they differ from the defaults,
  // so a spec that predates them echoes byte-identically.
  const CampaignSpec defaults;
  if (detection != defaults.detection) {
    os << ",\n" << pad << "  \"detection\": \"" << detection << "\"";
  }
  if (bfd_tx_ms != defaults.bfd_tx_ms) {
    os << ",\n" << pad << "  \"bfd_tx_ms\": " << bfd_tx_ms;
  }
  if (bfd_multiplier != defaults.bfd_multiplier) {
    os << ",\n" << pad << "  \"bfd_multiplier\": " << bfd_multiplier;
  }
  if (dampening != defaults.dampening) {
    os << ",\n" << pad << "  \"dampening\": " << (dampening ? "true" : "false");
  }
  if (fault != defaults.fault) {
    os << ",\n"
       << pad << "  \"fault\": \"" << failure::fault_kind_name(fault) << "\"";
  }
  if (gray_loss != defaults.gray_loss) {
    os << ",\n" << pad << "  \"gray_loss\": " << fmt(gray_loss);
  }
  if (flap_period_ms != defaults.flap_period_ms) {
    os << ",\n" << pad << "  \"flap_period_ms\": " << flap_period_ms;
  }
  if (flap_cycles != defaults.flap_cycles) {
    os << ",\n" << pad << "  \"flap_cycles\": " << flap_cycles;
  }
  if (fidelity != defaults.fidelity) {
    os << ",\n" << pad << "  \"fidelity\": \"" << fidelity << "\"";
  }
  if (trace != defaults.trace) {
    os << ",\n" << pad << "  \"trace\": " << (trace ? "true" : "false");
  }
  if (sample_interval_ms != defaults.sample_interval_ms) {
    os << ",\n"
       << pad << "  \"sample_interval_ms\": " << sample_interval_ms;
  }
  os << "\n" << pad << "}";
}

std::string ShardSpec::site() const {
  return is_link_site ? "L" + std::to_string(link_site)
                      : failure::condition_name(condition);
}

std::vector<ShardSpec> enumerate_shards(const CampaignSpec& spec) {
  std::vector<ShardSpec> shards;
  for (const auto& topology : spec.topologies) {
    // Resolve the topology's failure-site universe off the simulation
    // clock; construction order is deterministic for a given axis.
    int sites = spec.link_sites;
    if (sites != 0) {
      sim::Simulator sim(1);
      net::Network net(sim);
      const auto built = topology_builder(topology.name, topology.ports,
                                          topology.ring_width,
                                          topology.aspen_f)(net);
      const int all = static_cast<int>(failure::switch_links(built).size());
      sites = sites < 0 ? all : std::min(sites, all);
    }
    for (const auto& control : spec.controls) {
      const auto add = [&](bool is_link, failure::Condition condition,
                           int link_site) {
        for (int replicate = 0; replicate < spec.seeds; ++replicate) {
          ShardSpec shard;
          shard.index = static_cast<int>(shards.size());
          shard.topology = topology;
          shard.control = control;
          shard.is_link_site = is_link;
          shard.condition = condition;
          shard.link_site = link_site;
          shard.replicate = replicate;
          shard.seed = sim::Random::derive_stream_seed(
              spec.base_seed, static_cast<std::uint64_t>(shard.index));
          shards.push_back(std::move(shard));
        }
      };
      for (const failure::Condition condition : spec.conditions) {
        add(false, condition, -1);
      }
      for (int site = 0; site < sites; ++site) {
        add(true, failure::Condition::kC1, site);
      }
    }
  }
  return shards;
}

std::vector<ClassAggregate> aggregate_runs(
    const std::vector<ShardResult>& runs) {
  // Group deterministically by key; "total" spans every run.
  std::vector<std::string> keys{"total"};
  for (const ShardResult& r : runs) {
    const std::string key = r.topology + "/" + r.control + "/" +
                            (r.site_class.empty() ? r.site : r.site_class);
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin() + 1, keys.end());

  std::vector<ClassAggregate> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    ClassAggregate agg;
    agg.key = key;
    std::vector<double> losses_ms;
    for (const ShardResult& r : runs) {
      const std::string rkey = r.topology + "/" + r.control + "/" +
                               (r.site_class.empty() ? r.site : r.site_class);
      if (key != "total" && rkey != key) continue;
      ++agg.runs;
      if (!r.ok) {
        ++agg.failed;
        continue;
      }
      if (!r.on_path) continue;
      ++agg.affected;
      losses_ms.push_back(sim::to_millis(r.connectivity_loss));
      agg.packets_lost_total += r.packets_lost;
      const std::uint64_t lost = r.packets_lost;
      const int bucket = lost == 0 ? 0
                         : lost < 10 ? 1
                         : lost < 100 ? 2
                         : lost < 1000 ? 3
                                       : 4;
      ++agg.gap_loss_hist[bucket];
    }
    if (!losses_ms.empty()) {
      std::sort(losses_ms.begin(), losses_ms.end());
      double sum = 0;
      for (const double v : losses_ms) sum += v;
      const auto rank = [&losses_ms](double q) {
        const auto n = losses_ms.size();
        const auto i = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(n))) ;
        return losses_ms[i == 0 ? 0 : std::min(i - 1, n - 1)];
      };
      agg.loss_ms_mean = sum / static_cast<double>(losses_ms.size());
      agg.loss_ms_p50 = rank(0.50);
      agg.loss_ms_p99 = rank(0.99);
      agg.loss_ms_max = losses_ms.back();
    }
    out.push_back(std::move(agg));
  }
  return out;
}

void CampaignResult::write_json(std::ostream& os,
                                bool include_profile) const {
  os << "{\n  \"schema_version\": " << kSchemaVersion
     << ",\n  \"kind\": \"f2t-campaign\",\n  \"spec\": ";
  spec.write_json(os, 2);
  os << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ShardResult& r = runs[i];
    os << "    {\"i\": " << r.index << ", \"topo\": \""
       << json::escape(r.topology) << "\", \"control\": \"" << r.control
       << "\", \"site\": \"" << json::escape(r.site) << "\", \"class\": \""
       << json::escape(r.site_class) << "\", \"rep\": " << r.replicate
       << ", \"seed\": \"" << r.seed << "\", \"ok\": "
       << (r.ok ? "true" : "false")
       << ", \"on_path\": " << (r.on_path ? "true" : "false")
       << ", \"loss_ns\": " << r.connectivity_loss
       << ", \"sent\": " << r.packets_sent << ", \"lost\": " << r.packets_lost
       << ", \"events\": " << r.events_executed;
    // Observability fields ride along only when the spec asked for the
    // corresponding axis — the emission condition is the *spec*, not the
    // per-run values, so the record shape is uniform and deterministic.
    if (spec.trace) {
      os << ", \"spans\": " << r.spans << ", \"detect_ns\": " << r.detect_ns
         << ", \"converge_ns\": " << r.converge_ns;
    }
    if (spec.sample_interval_ms > 0) {
      os << ", \"samples\": " << r.samples
         << ", \"queue_p99\": " << fmt(r.queue_p99)
         << ", \"queue_max\": " << fmt(r.queue_max);
    }
    if (!r.error.empty()) {
      os << ", \"error\": \"" << json::escape(r.error) << "\"";
    }
    os << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"aggregates\": [\n";
  const auto aggregates = aggregate_runs(runs);
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    const ClassAggregate& a = aggregates[i];
    os << "    {\"class\": \"" << json::escape(a.key)
       << "\", \"runs\": " << a.runs << ", \"affected\": " << a.affected
       << ", \"failed\": " << a.failed << ", \"loss_ms_mean\": "
       << fmt(a.loss_ms_mean) << ", \"loss_ms_p50\": " << fmt(a.loss_ms_p50)
       << ", \"loss_ms_p99\": " << fmt(a.loss_ms_p99)
       << ", \"loss_ms_max\": " << fmt(a.loss_ms_max)
       << ", \"packets_lost\": " << a.packets_lost_total
       << ", \"gap_loss_hist\": [";
    for (int b = 0; b < 5; ++b) {
      os << (b ? ", " : "") << a.gap_loss_hist[b];
    }
    os << "]}" << (i + 1 < aggregates.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (include_profile) {
    double shard_wall = 0;
    std::size_t events = 0;
    for (const ShardResult& r : runs) {
      shard_wall += r.wall_seconds;
      events += r.events_executed;
    }
    os << ",\n  \"profile\": {\"jobs\": " << jobs << ", \"wall_seconds\": "
       << fmt(wall_seconds) << ", \"shard_wall_seconds\": " << fmt(shard_wall)
       << ", \"events_executed\": " << events
       << ", \"runs_per_second\": "
       << fmt(wall_seconds > 0 ? static_cast<double>(runs.size()) /
                                     wall_seconds
                               : 0)
       << ", \"hardware_threads\": " << hardware_threads
       << ", \"steals\": " << steals << "}";
  }
  os << "\n}\n";
}

}  // namespace f2t::core
