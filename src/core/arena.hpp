#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace f2t::core {

/// Index sentinel shared by the arena and the intrusive containers.
inline constexpr std::uint32_t kNilIndex = 0xFFFFFFFFu;

/// Handle layout, shared by every Arena<T> instantiation: slot index in
/// the low 24 bits, slot generation in the high 8.
inline constexpr std::uint32_t kHandleIndexBits = 24;
inline constexpr std::uint32_t kHandleIndexMask = (1u << kHandleIndexBits) - 1;

/// Typed slab arena with generation-checked 32-bit handles.
///
/// The flow-scale bookkeeping problem: a simulation holding 10^5..10^6
/// concurrent flows cannot afford one heap object per flow (allocator
/// traffic, pointer chasing, 8-byte handles) nor `std::vector` erase/compact
/// churn. The arena packs objects into fixed-size slabs (stable addresses —
/// slabs never move or shrink), recycles released slots through a free list
/// (O(1) alloc/release, amortized zero allocation in steady state), and
/// hands out 32-bit handles of the form `slot index (24 bits) | generation
/// (8 bits) << 24`. The generation advances on every release, so a stale
/// handle held across a release/realloc of the same slot is *detected*
/// rather than silently aliasing the new tenant.
///
/// Deliberate non-feature: released slots are neither destroyed nor reset,
/// and alloc() does not re-construct. A recycled object keeps whatever the
/// previous tenant left — including grown std::vector capacities, which is
/// exactly what per-flow path/hop buffers want — and the caller resets the
/// fields it cares about. T must be default-constructible.
template <typename T>
class Arena {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNullHandle = 0xFFFFFFFFu;
  static constexpr std::uint32_t kIndexBits = kHandleIndexBits;
  static constexpr std::uint32_t kIndexMask = kHandleIndexMask;
  /// Index kIndexMask is never allocated so no live handle equals
  /// kNullHandle (whose index bits are all ones).
  static constexpr std::uint32_t kMaxSlots = kIndexMask;

  static std::uint32_t index_of(Handle h) { return h & kIndexMask; }
  static std::uint8_t generation_of(Handle h) {
    return static_cast<std::uint8_t>(h >> kIndexBits);
  }

  /// Returns a handle to a default-constructed-or-recycled slot.
  Handle alloc() {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      if (slots_ >= kMaxSlots) {
        throw std::length_error("Arena: slot space exhausted");
      }
      idx = static_cast<std::uint32_t>(slots_);
      if ((idx >> kChunkShift) >= slabs_.size()) {
        slabs_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
      ++slots_;
    }
    Slot& s = slot(idx);
    s.live = true;
    ++live_;
    return idx | (static_cast<Handle>(s.gen) << kIndexBits);
  }

  /// Invalidates `h` and recycles its slot. Throws on stale/invalid
  /// handles — a double release is always a caller bug.
  void release(Handle h) {
    Slot& s = checked_slot(h);
    s.live = false;
    ++s.gen;  // uint8 wrap is fine: 256 reuses per false-positive chance
    --live_;
    free_.push_back(index_of(h));
  }

  T& get(Handle h) { return checked_slot(h).value; }
  const T& get(Handle h) const {
    return const_cast<Arena*>(this)->checked_slot(h).value;
  }

  /// nullptr instead of throwing when `h` is stale or invalid.
  T* try_get(Handle h) {
    const std::uint32_t idx = index_of(h);
    if (idx >= slots_) return nullptr;
    Slot& s = slot(idx);
    if (!s.live || s.gen != generation_of(h)) return nullptr;
    return &s.value;
  }
  const T* try_get(Handle h) const { return const_cast<Arena*>(this)->try_get(h); }

  bool contains(Handle h) const {
    return const_cast<Arena*>(this)->try_get(h) != nullptr;
  }

  /// Unchecked-by-generation access for intrusive containers, which store
  /// raw slot indices of objects they know to be live.
  T& at_index(std::uint32_t idx) { return slot(idx).value; }
  const T& at_index(std::uint32_t idx) const {
    return const_cast<Arena*>(this)->slot(idx).value;
  }

  /// Rebuilds the current handle of a live slot index.
  Handle handle_of_index(std::uint32_t idx) const {
    const Slot& s = const_cast<Arena*>(this)->slot(idx);
    return idx | (static_cast<Handle>(s.gen) << kIndexBits);
  }

  std::size_t live_count() const { return live_; }
  std::size_t slot_count() const { return slots_; }

 private:
  static constexpr std::uint32_t kChunkShift = 12;  // 4096 slots per slab
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  struct Slot {
    T value{};
    std::uint8_t gen = 0;
    bool live = false;
  };

  Slot& slot(std::uint32_t idx) {
    return slabs_[idx >> kChunkShift][idx & kChunkMask];
  }

  Slot& checked_slot(Handle h) {
    const std::uint32_t idx = index_of(h);
    if (idx >= slots_) throw std::out_of_range("Arena: handle out of range");
    Slot& s = slot(idx);
    if (!s.live || s.gen != generation_of(h)) {
      throw std::out_of_range("Arena: stale handle");
    }
    return s;
  }

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<std::uint32_t> free_;
  std::size_t slots_ = 0;
  std::size_t live_ = 0;
};

/// Link block embedded in arena objects for IntrusiveList membership.
/// One ListLink member per list the object can be on.
struct ListLink {
  std::uint32_t prev = kNilIndex;
  std::uint32_t next = kNilIndex;
};

/// Doubly-linked list threaded through arena slots via an embedded
/// ListLink member. Stores raw slot indices (members are live by
/// construction — a slot is unlinked before release). O(1) push/erase, no
/// allocation, and iteration touches only list members — never O(slots).
///
///   for (auto i = list.head(); i != core::kNilIndex; i = list.next(a, i))
template <typename T, ListLink T::* LinkField>
class IntrusiveList {
 public:
  std::uint32_t head() const { return head_; }
  std::uint32_t tail() const { return tail_; }
  bool empty() const { return head_ == kNilIndex; }
  std::size_t size() const { return size_; }

  std::uint32_t next(const Arena<T>& a, std::uint32_t idx) const {
    return (a.at_index(idx).*LinkField).next;
  }
  std::uint32_t prev(const Arena<T>& a, std::uint32_t idx) const {
    return (a.at_index(idx).*LinkField).prev;
  }

  void push_back(Arena<T>& a, std::uint32_t idx) {
    ListLink& link = a.at_index(idx).*LinkField;
    link.prev = tail_;
    link.next = kNilIndex;
    if (tail_ != kNilIndex) {
      (a.at_index(tail_).*LinkField).next = idx;
    } else {
      head_ = idx;
    }
    tail_ = idx;
    ++size_;
  }

  void erase(Arena<T>& a, std::uint32_t idx) {
    ListLink& link = a.at_index(idx).*LinkField;
    if (link.prev != kNilIndex) {
      (a.at_index(link.prev).*LinkField).next = link.next;
    } else {
      head_ = link.next;
    }
    if (link.next != kNilIndex) {
      (a.at_index(link.next).*LinkField).prev = link.prev;
    } else {
      tail_ = link.prev;
    }
    link.prev = kNilIndex;
    link.next = kNilIndex;
    --size_;
  }

  void clear() {
    head_ = kNilIndex;
    tail_ = kNilIndex;
    size_ = 0;
  }

 private:
  std::uint32_t head_ = kNilIndex;
  std::uint32_t tail_ = kNilIndex;
  std::size_t size_ = 0;
};

}  // namespace f2t::core
