#include "core/cli.hpp"

#include <stdexcept>

namespace f2t::core {

Cli::Cli(int argc, const char* const* argv) {
  int i = 1;
  if (i < argc && argv[i][0] != '-') command_ = argv[i++];
  while (i < argc) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      throw std::invalid_argument("expected --key [value], got '" + arg +
                                  "'");
    }
    const std::string key = arg.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[i + 1];
      i += 2;
    } else {
      flags_[key] = true;
      ++i;
    }
  }
}

std::string Cli::get(const std::string& key, const std::string& fallback) {
  touched_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Cli::get_int(const std::string& key, int fallback) {
  touched_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoi(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Cli::get_double(const std::string& key, double fallback) {
  touched_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Cli::get_flag(const std::string& key) {
  touched_[key] = true;
  return flags_.contains(key);
}

std::vector<std::string> Cli::unknown_keys() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (!touched_.contains(key)) unknown.push_back(key);
  }
  for (const auto& [key, set] : flags_) {
    if (!touched_.contains(key)) unknown.push_back(key);
  }
  return unknown;
}

}  // namespace f2t::core
