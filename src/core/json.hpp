#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace f2t::core::json {

/// Minimal JSON document model for the declarative inputs the tooling
/// reads (campaign specs). Writing stays hand-rolled at each call site —
/// the output schemas are small and byte-stability matters there — but
/// *parsing* user-authored JSON needs a real grammar. This is a strict
/// RFC 8259 subset: no comments, no trailing commas, objects keep their
/// textual key order (specs are echoed back into campaign results, and
/// determinism tests compare those bytes).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::invalid_argument on a kind mismatch so
  /// spec errors surface as one readable message instead of a default.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;  ///< throws when not integral
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Object member by key, or nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;
  /// Object member by key; throws std::invalid_argument when absent.
  const Value& at(std::string_view key) const;

  /// Convenience lookups with defaults, for optional spec fields.
  double number_or(std::string_view key, double fallback) const;
  std::int64_t int_or(std::string_view key, std::int64_t fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<std::pair<std::string, Value>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses one JSON document (with nothing but whitespace after it).
/// Throws std::invalid_argument with a byte offset on malformed input.
Value parse(std::string_view text);

/// Escapes a string for embedding in hand-rolled JSON writers.
std::string escape(std::string_view text);

}  // namespace f2t::core::json
