#include "core/runner.hpp"

#include <chrono>
#include <memory>
#include <stdexcept>

#include "topo/aspen.hpp"
#include "topo/f2tree.hpp"
#include "topo/leafspine.hpp"
#include "topo/vl2.hpp"
#include "transport/fluid.hpp"
#include "transport/udp_app.hpp"
#include "transport/workload.hpp"

namespace f2t::core {

bool parse_fidelity(const std::string& name, Fidelity& out) {
  if (name == "packet") {
    out = Fidelity::kPacket;
    return true;
  }
  if (name == "flow") {
    out = Fidelity::kFlow;
    return true;
  }
  return false;
}

const char* fidelity_name(Fidelity fidelity) {
  return fidelity == Fidelity::kFlow ? "flow" : "packet";
}

Testbed::TopoBuilder topology_builder(const std::string& name, int ports,
                                      int ring_width, int aspen_f) {
  if (name == "fat") {
    return [ports](net::Network& n) {
      return topo::build_fat_tree(n, topo::FatTreeOptions{.ports = ports});
    };
  }
  if (name == "f2") {
    return [ports, ring_width](net::Network& n) {
      return topo::build_f2tree(n, ports, ring_width);
    };
  }
  if (name == "f2scaled") {
    return [ports](net::Network& n) {
      return topo::build_f2tree_scaled(n,
                                       topo::F2TreeScaledOptions{ports, -1});
    };
  }
  if (name == "leafspine" || name == "leafspine-f2") {
    const bool f2 = name == "leafspine-f2";
    return [ports, f2](net::Network& n) {
      return topo::build_leaf_spine(
          n, topo::LeafSpineOptions{.ports = ports, .f2_rewire = f2});
    };
  }
  if (name == "vl2" || name == "vl2-f2") {
    const bool f2 = name == "vl2-f2";
    return [ports, f2](net::Network& n) {
      return topo::build_vl2(
          n, topo::Vl2Options{.ports = ports, .f2_rewire = f2});
    };
  }
  if (name == "aspen") {
    return [ports, aspen_f](net::Network& n) {
      return topo::build_aspen_tree(
          n, topo::AspenOptions{.ports = ports, .fault_tolerance = aspen_f,
                                .hosts_per_tor = -1});
    };
  }
  throw std::invalid_argument("unknown topology: " + name);
}

namespace {

/// Runs the simulation to the horizon. The engine profile (event count,
/// wall clock, calendar-queue stats) is always filled — the campaign
/// engine accounts for work per shard without paying for full
/// observation; the journal and metrics snapshot are only collected when
/// observation is on, and the sampler report only when sampling is.
void run_and_observe(Testbed& bed, sim::Time horizon,
                     obs::RunObservation& observation) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t executed = bed.sim().run(horizon);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  observation.profile.events_executed = executed;
  observation.profile.wall_seconds = wall.count();
  observation.profile.sim_seconds = sim::to_seconds(bed.sim().now());
  observation.profile.queue = bed.sim().scheduler().queue_stats();
  if (bed.sampling()) observation.samples = bed.sampler().report();
  if (!bed.observing()) return;
  observation.enabled = true;
  observation.metrics = bed.obs().metrics.snapshot(bed.sim().now());
  observation.events = bed.obs().journal.events();
}

/// Shared arrival accounting: per-packet delay/throughput series, the
/// optional observability histogram, and the connectivity-loss window.
/// Identical for both fidelities — the fluid path hands in the same
/// Arrival records the packet-mode sink collects.
void collect_udp_arrivals(
    Testbed& bed, UdpRun& out,
    const std::vector<transport::UdpSink::Arrival>& sink_arrivals,
    std::uint32_t wire_bytes, sim::Time fail_at) {
  const auto collect_start = std::chrono::steady_clock::now();
  obs::Histogram* delay_hist = nullptr;
  if (bed.observing()) {
    delay_hist = &bed.obs().metrics.histogram(
        "udp.delay_us", {50, 100, 250, 500, 1000, 5000, 25000, 100000});
  }
  std::vector<sim::Time> arrivals;
  arrivals.reserve(sink_arrivals.size());
  for (const auto& a : sink_arrivals) {
    arrivals.push_back(a.at);
    out.delay_series.add(a.at, sim::to_micros(a.delay));
    out.throughput.add(a.at, wire_bytes);
    if (delay_hist != nullptr) delay_hist->observe(sim::to_micros(a.delay));
  }
  if (delay_hist != nullptr) {
    // Re-snapshot so the histogram (filled after the run) is exported.
    out.observation.metrics = bed.obs().metrics.snapshot(bed.sim().now());
  }
  const auto loss = stats::find_connectivity_loss(arrivals, fail_at);
  out.ok = true;
  if (loss) out.connectivity_loss = loss->duration();
  const std::chrono::duration<double> collect =
      std::chrono::steady_clock::now() - collect_start;
  out.observation.profile.collect_wall_seconds = collect.count();
}

/// The packet-fidelity probe-flow body: attach a CBR UDP probe for the
/// plan's 5-tuple, fail the plan's links at knobs.fail_at, run to the
/// horizon and collect the paper's metrics. Condition runs and campaign
/// link-site runs differ only in how the plan is constructed.
UdpRun run_udp_plan_packet(Testbed& bed, const failure::ScenarioPlan& plan,
                           const RunKnobs& knobs) {
  UdpRun out;
  out.scenario = plan.description;
  out.site_class = plan.site_class;
  out.probe_on_path = plan.on_path;

  auto& src_stack = bed.stack_of(*plan.src);
  auto& dst_stack = bed.stack_of(*plan.dst);
  transport::UdpSink sink(dst_stack, plan.dport);
  transport::UdpCbrSender::Options so;
  so.sport = plan.sport;
  so.dport = plan.dport;
  so.stop = knobs.horizon - sim::millis(200);
  transport::UdpCbrSender sender(src_stack, plan.dst->addr(), so);
  sender.start();

  std::unique_ptr<transport::TcpWorkload> workload;
  if (knobs.workload_enabled) {
    auto wo = knobs.workload;
    if (wo.stop > knobs.horizon) wo.stop = knobs.horizon;
    workload = std::make_unique<transport::TcpWorkload>(
        bed.stacks(),
        sim::Random(sim::Random::derive_stream_seed(knobs.config.seed,
                                                    kWorkloadStream)),
        std::move(wo));
    workload->start();
  }

  failure::apply_fault(bed.topo(), bed.injector(), plan, knobs.fault,
                       knobs.fail_at);
  run_and_observe(bed, knobs.horizon, out.observation);

  if (workload != nullptr) {
    out.slo_enabled = true;
    out.slo = stats::compute_slo(workload->samples(), knobs.fail_at,
                                 knobs.horizon, knobs.horizon);
  }

  out.packets_sent = sender.packets_sent();
  out.packets_lost =
      stats::packets_lost(sender.packets_sent(), sink.packets_received());
  collect_udp_arrivals(bed, out, sink.arrivals(),
                       so.payload_bytes + net::kUdpHeaderBytes, knobs.fail_at);
  return out;
}

/// The flow-fidelity body: same plan, same metrics, no probe packets —
/// the FluidProbe derives the delivered set from routing-state regimes
/// and channel availability windows (see transport/fluid.hpp).
UdpRun run_udp_plan_fluid(Testbed& bed, const failure::ScenarioPlan& plan,
                          const RunKnobs& knobs) {
  if (knobs.fault.kind == failure::FaultKind::kGray) {
    throw std::invalid_argument(
        "flow fidelity cannot model gray faults (per-packet loss draws "
        "need packets); use packet fidelity");
  }
  if (knobs.config.detection.mode == routing::DetectionMode::kProbe) {
    throw std::invalid_argument(
        "flow fidelity requires oracle detection (BFD hello timing "
        "interleaves with probe serialization); use packet fidelity");
  }
  if (knobs.workload_enabled) {
    throw std::invalid_argument(
        "flow fidelity does not carry the TCP workload (no host stacks in "
        "the fluid probe model); use packet fidelity");
  }
  UdpRun out;
  out.scenario = plan.description;
  out.site_class = plan.site_class;
  out.probe_on_path = plan.on_path;

  transport::FluidProbe::Options fo;
  fo.sport = plan.sport;
  fo.dport = plan.dport;
  fo.stop = knobs.horizon - sim::millis(200);
  transport::FluidProbe probe(bed.network(), *plan.src, *plan.dst, fo);
  if (bed.observing()) {
    const auto& fs = probe.stats();
    bed.obs().metrics.register_probe("fluid.routing_changes", [&fs] {
      return static_cast<double>(fs.routing_changes);
    });
    bed.obs().metrics.register_probe("fluid.retraces", [&fs] {
      return static_cast<double>(fs.retraces);
    });
    bed.obs().metrics.register_probe("fluid.straddlers", [&fs] {
      return static_cast<double>(fs.straddlers);
    });
    bed.obs().metrics.register_probe("fluid.loop_traces", [&fs] {
      return static_cast<double>(fs.loop_traces);
    });
    bed.obs().metrics.register_probe("fluid.probe_rate_bps",
                                     [&probe] { return probe.probe_rate_bps(); });
  }
  if (bed.sampling()) {
    // FluidFlowTable rate of the probe flow, sampled like any other
    // series (the probe is constructed before the first tick fires).
    bed.sampler().add_gauge("fluid.probe_rate_bps",
                            [&probe] { return probe.probe_rate_bps(); });
  }

  failure::apply_fault(bed.topo(), bed.injector(), plan, knobs.fault,
                       knobs.fail_at);
  run_and_observe(bed, knobs.horizon, out.observation);
  probe.finalize();
  if (bed.observing()) {
    // Materialize the fluid model's derived deliveries as journal events
    // so the RecoveryTimeline (and the span tracer) see the same
    // packet_delivered stream a packet-fidelity run records. Appended
    // after the fact — the timeline sorts deliveries by time itself.
    auto& journal = bed.obs().journal;
    const std::int64_t dst_id = plan.dst->id();
    for (const auto& a : probe.arrivals()) {
      obs::Event e;
      e.at = a.at;
      e.type = obs::EventType::kPacketDelivered;
      e.proto = static_cast<std::uint8_t>(net::Protocol::kUdp);
      e.node = dst_id;
      e.uid = a.seq;
      journal.record(e);
    }
    out.observation.events = journal.events();
  }

  out.packets_sent = probe.packets_sent();
  out.packets_lost =
      stats::packets_lost(probe.packets_sent(), probe.arrivals().size());
  out.fluid_loop_traces = probe.stats().loop_traces;
  collect_udp_arrivals(bed, out, probe.arrivals(),
                       fo.payload_bytes + net::kUdpHeaderBytes, knobs.fail_at);
  return out;
}

UdpRun run_udp_plan(Testbed& bed, const failure::ScenarioPlan& plan,
                    const RunKnobs& knobs) {
  return knobs.fidelity == Fidelity::kFlow
             ? run_udp_plan_fluid(bed, plan, knobs)
             : run_udp_plan_packet(bed, plan, knobs);
}

}  // namespace

UdpRun run_udp_condition(const Testbed::TopoBuilder& builder,
                         failure::Condition condition,
                         const RunKnobs& knobs) {
  const auto setup_start = std::chrono::steady_clock::now();
  Testbed bed(builder, knobs.config);
  bed.converge();
  const auto plan = failure::build_condition(bed.topo(), condition,
                                             net::Protocol::kUdp);
  const std::chrono::duration<double> setup =
      std::chrono::steady_clock::now() - setup_start;
  if (!plan) return {};
  auto out = run_udp_plan(bed, *plan, knobs);
  out.observation.profile.setup_wall_seconds = setup.count();
  return out;
}

UdpRun run_udp_link_site(const Testbed::TopoBuilder& builder, int site,
                         const RunKnobs& knobs) {
  const auto setup_start = std::chrono::steady_clock::now();
  Testbed bed(builder, knobs.config);
  bed.converge();
  const auto plan =
      failure::build_link_site_plan(bed.topo(), site, net::Protocol::kUdp);
  const std::chrono::duration<double> setup =
      std::chrono::steady_clock::now() - setup_start;
  if (!plan) return {};
  auto out = run_udp_plan(bed, *plan, knobs);
  out.observation.profile.setup_wall_seconds = setup.count();
  return out;
}

TcpRun run_tcp_condition(const Testbed::TopoBuilder& builder,
                         failure::Condition condition,
                         const RunKnobs& knobs) {
  if (knobs.fidelity == Fidelity::kFlow) {
    throw std::invalid_argument(
        "flow fidelity does not model TCP (window dynamics are per-packet); "
        "use packet fidelity");
  }
  TcpRun out;
  const auto setup_start = std::chrono::steady_clock::now();
  Testbed bed(builder, knobs.config);
  bed.converge();
  const auto plan = failure::build_condition(bed.topo(), condition,
                                             net::Protocol::kTcp);
  out.observation.profile.setup_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    setup_start)
          .count();
  if (!plan) return out;

  auto& src_stack = bed.stack_of(*plan->src);
  auto& dst_stack = bed.stack_of(*plan->dst);
  transport::TcpConnection conn(src_stack, dst_stack, plan->sport,
                                plan->dport, knobs.tcp);
  std::uint64_t last = 0;
  conn.b().set_on_delivered([&](std::uint64_t d) {
    out.throughput.add(bed.sim().now(), d - last);
    last = d;
  });
  transport::PacedTcpWriter::Options wo;
  wo.stop = knobs.horizon - sim::millis(500);
  transport::PacedTcpWriter writer(conn.a(), bed.sim(), wo);
  writer.start();

  failure::apply_fault(bed.topo(), bed.injector(), *plan, knobs.fault,
                       knobs.fail_at);
  if (bed.observing()) {
    const auto& stats = conn.a().stats();
    bed.obs().metrics.register_probe("tcp.rto_fires", [&stats]() {
      return static_cast<double>(stats.rto_fires);
    });
    bed.obs().metrics.register_probe("tcp.segments_retransmitted", [&stats]() {
      return static_cast<double>(stats.segments_retransmitted);
    });
    bed.obs().metrics.register_probe("tcp.fast_retransmits", [&stats]() {
      return static_cast<double>(stats.fast_retransmits);
    });
  }
  run_and_observe(bed, knobs.horizon, out.observation);
  out.ok = true;
  out.rto_fires = conn.a().stats().rto_fires;
  out.collapse = stats::throughput_collapse_duration(
      out.throughput, sim::millis(100), knobs.fail_at, wo.stop);
  return out;
}

}  // namespace f2t::core
