#include "core/experiment.hpp"

#include <stdexcept>

#include "obs/attach.hpp"
#include "topo/validate.hpp"

namespace f2t::core {

Testbed::Testbed(const TopoBuilder& builder, const TestbedConfig& config)
    : config_(config),
      sim_(std::make_unique<sim::Simulator>(config.seed)),
      network_(std::make_unique<net::Network>(*sim_)) {
  sim_->logger().set_threshold(config_.log_level);
  network_->set_default_link_params(config_.link);
  topo_ = builder(*network_);
  topo::validate_topology_or_throw(topo_);

  // Backup static routes (the paper's Table II configuration).
  const bool want_backups =
      config_.backup == BackupMode::kPaper ||
      config_.backup == BackupMode::kEqualLength ||
      (config_.backup == BackupMode::kAuto && topo_.f2);
  if (want_backups) {
    if (config_.backup == BackupMode::kEqualLength) {
      topo::install_backup_routes_equal_length(topo_);
    } else {
      topo::install_backup_routes(topo_);
    }
  }

  // Control plane: one OSPF instance per switch (ToRs redistribute their
  // rack subnet), or one controller managing every switch.
  if (config_.control_plane == ControlPlane::kOspf) {
    for (net::L3Switch* sw : topo_.all_switches()) {
      auto instance = std::make_unique<routing::Ospf>(*sw, config_.ospf);
      if (const auto it = topo_.subnet_of_tor.find(sw);
          it != topo_.subnet_of_tor.end()) {
        instance->redistribute(it->second);
      }
      instance->attach();
      ospf_by_switch_.emplace(sw, instance.get());
      ospf_.push_back(std::move(instance));
    }
  } else if (config_.control_plane == ControlPlane::kCentral) {
    controller_ = std::make_unique<routing::CentralController>(config_.central);
    for (net::L3Switch* sw : topo_.all_switches()) {
      std::vector<net::Prefix> prefixes;
      if (const auto it = topo_.subnet_of_tor.find(sw);
          it != topo_.subnet_of_tor.end()) {
        prefixes.push_back(it->second);
      }
      controller_->manage(*sw, std::move(prefixes));
    }
  } else {
    for (net::L3Switch* sw : topo_.all_switches()) {
      auto instance =
          std::make_unique<routing::PathVector>(*sw, config_.path_vector);
      if (const auto it = topo_.subnet_of_tor.find(sw);
          it != topo_.subnet_of_tor.end()) {
        instance->redistribute(it->second);
        // ToRs are non-transit (RFC 7938-style): no valley paths through
        // a rack.
        instance->set_transit(false);
      }
      instance->attach();
      path_vector_by_switch_.emplace(sw, instance.get());
      path_vector_.push_back(std::move(instance));
    }
  }

  if (config_.detection.mode == routing::DetectionMode::kProbe) {
    bfd_ = std::make_unique<routing::BfdManager>(*network_, config_.bfd);
    bfd_->attach_all();
  } else {
    detection_ = std::make_unique<routing::DetectionAgent>(*network_,
                                                           config_.detection);
    detection_->attach_all();
  }

  for (net::Host* host : topo_.hosts) {
    auto stack = std::make_unique<transport::HostStack>(*host);
    stack_by_host_.emplace(host, stack.get());
    stacks_.push_back(std::move(stack));
  }

  injector_ = std::make_unique<failure::FailureInjector>(*network_);

  if (config_.sample_interval > 0) {
    sampler_ = std::make_unique<obs::TelemetrySampler>(
        *sim_, obs::SamplerConfig{config_.sample_interval,
                                  config_.sample_capacity});
    obs::attach_telemetry(*sampler_, *sim_, *network_);
  }

  if (config_.observe) {
    obs_ = std::make_unique<obs::Observability>();
    obs_->journal.set_capacity(config_.journal_capacity);
    obs_->metrics.register_probe("journal.dropped_events", [this]() {
      return static_cast<double>(obs_->journal.dropped());
    });
    obs::attach_journal(*sim_, *network_, obs_->journal);
    for (const auto& instance : ospf_) {
      obs::attach_journal(*sim_, *instance, obs_->journal);
    }
    if (controller_ != nullptr) {
      obs::attach_journal(*sim_, *controller_, obs_->journal);
    }
    for (const auto& instance : path_vector_) {
      obs::attach_journal(*sim_, *instance, obs_->journal);
    }
    obs::register_metrics(obs_->metrics, *network_);
    obs::register_metrics(obs_->metrics, *sim_);
    if (detection_ != nullptr) {
      obs::register_metrics(obs_->metrics, *detection_);
    }
    if (bfd_ != nullptr) {
      obs::attach_journal(*sim_, *bfd_, obs_->journal);
      obs::register_metrics(obs_->metrics, *bfd_);
    }
    if (!ospf_.empty()) {
      auto ospf_probe = [this](auto field) {
        return [this, field]() {
          std::uint64_t total = 0;
          for (const auto& i : ospf_) total += field(i->counters());
          return static_cast<double>(total);
        };
      };
      obs_->metrics.register_probe(
          "ospf.lsas_originated", ospf_probe([](const routing::Ospf::Counters&
                                                    c) {
            return c.lsas_originated;
          }));
      obs_->metrics.register_probe(
          "ospf.lsas_accepted",
          ospf_probe([](const routing::Ospf::Counters& c) {
            return c.lsas_accepted;
          }));
      obs_->metrics.register_probe(
          "ospf.spf_runs", ospf_probe([](const routing::Ospf::Counters& c) {
            return c.spf_runs;
          }));
      obs_->metrics.register_probe(
          "ospf.spf_incremental_runs",
          ospf_probe([](const routing::Ospf::Counters& c) {
            return c.spf_incremental_runs;
          }));
      obs_->metrics.register_probe(
          "ospf.fib_installs",
          ospf_probe([](const routing::Ospf::Counters& c) {
            return c.fib_installs;
          }));
      obs_->metrics.register_probe(
          "ospf.fib_noop_installs",
          ospf_probe([](const routing::Ospf::Counters& c) {
            return c.fib_noop_installs;
          }));
    }
    if (controller_ != nullptr) {
      obs_->metrics.register_probe("central.reports", [this]() {
        return static_cast<double>(controller_->counters().reports);
      });
      obs_->metrics.register_probe("central.computations", [this]() {
        return static_cast<double>(controller_->counters().computations);
      });
      obs_->metrics.register_probe("central.fib_pushes", [this]() {
        return static_cast<double>(controller_->counters().fib_pushes);
      });
    }
    if (!path_vector_.empty()) {
      auto pv_probe = [this](auto field) {
        return [this, field]() {
          std::uint64_t total = 0;
          for (const auto& i : path_vector_) total += field(i->counters());
          return static_cast<double>(total);
        };
      };
      obs_->metrics.register_probe(
          "bgp.updates_sent",
          pv_probe([](const routing::PathVector::Counters& c) {
            return c.updates_sent;
          }));
      obs_->metrics.register_probe(
          "bgp.updates_received",
          pv_probe([](const routing::PathVector::Counters& c) {
            return c.updates_received;
          }));
      obs_->metrics.register_probe(
          "bgp.fib_installs",
          pv_probe([](const routing::PathVector::Counters& c) {
            return c.fib_installs;
          }));
    }
  }
}

obs::Observability& Testbed::obs() {
  if (obs_ == nullptr) {
    throw std::logic_error(
        "Testbed: observability is off (set TestbedConfig.observe)");
  }
  return *obs_;
}

void Testbed::converge() {
  if (controller_ != nullptr) {
    controller_->converge();
  } else if (!path_vector_.empty()) {
    routing::PathVector::warm_start_all(path_vector_);
  } else {
    routing::warm_start_all(ospf_);
  }
  // Sampling starts from the converged state: the first tick lands one
  // interval into the workload, not during warm-start.
  if (sampler_ != nullptr) sampler_->start();
}

obs::TelemetrySampler& Testbed::sampler() {
  if (sampler_ == nullptr) {
    throw std::logic_error(
        "Testbed: sampling is off (set TestbedConfig.sample_interval)");
  }
  return *sampler_;
}

routing::PathVector& Testbed::path_vector_of(const net::L3Switch& sw) {
  const auto it = path_vector_by_switch_.find(&sw);
  if (it == path_vector_by_switch_.end()) {
    throw std::invalid_argument("Testbed: no path-vector instance for " +
                                sw.name());
  }
  return *it->second;
}

routing::CentralController& Testbed::controller() {
  if (controller_ == nullptr) {
    throw std::logic_error("Testbed: not running the central control plane");
  }
  return *controller_;
}

transport::HostStack& Testbed::stack_of(const net::Host& host) {
  const auto it = stack_by_host_.find(&host);
  if (it == stack_by_host_.end()) {
    throw std::invalid_argument("Testbed: unknown host " + host.name());
  }
  return *it->second;
}

routing::Ospf& Testbed::ospf_of(const net::L3Switch& sw) {
  const auto it = ospf_by_switch_.find(&sw);
  if (it == ospf_by_switch_.end()) {
    throw std::invalid_argument("Testbed: unknown switch " + sw.name());
  }
  return *it->second;
}

std::vector<transport::HostStack*> Testbed::stacks() {
  std::vector<transport::HostStack*> out;
  out.reserve(stacks_.size());
  for (const auto& stack : stacks_) out.push_back(stack.get());
  return out;
}

routing::BfdManager& Testbed::bfd() {
  if (bfd_ == nullptr) {
    throw std::logic_error(
        "Testbed: not running probe detection (set detection.mode = kProbe)");
  }
  return *bfd_;
}

routing::Ospf::Counters Testbed::total_ospf_counters() const {
  routing::Ospf::Counters total;
  for (const auto& instance : ospf_) {
    const auto& c = instance->counters();
    total.lsas_originated += c.lsas_originated;
    total.lsas_accepted += c.lsas_accepted;
    total.lsas_ignored += c.lsas_ignored;
    total.spf_runs += c.spf_runs;
    total.spf_incremental_runs += c.spf_incremental_runs;
    total.fib_installs += c.fib_installs;
    total.fib_noop_installs += c.fib_noop_installs;
  }
  return total;
}

}  // namespace f2t::core
