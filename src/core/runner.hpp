#pragma once

#include <string>

#include "core/experiment.hpp"
#include "failure/scenarios.hpp"
#include "obs/timeline.hpp"
#include "stats/flow_metrics.hpp"
#include "stats/timeseries.hpp"
#include "transport/tcp.hpp"
#include "transport/workload.hpp"

namespace f2t::core {

/// Canonical experiment drivers shared by the bench harnesses, the CLI
/// tool and the tests: build a Testbed, converge, attach a probe flow,
/// inject a Table IV failure condition, and collect the paper's metrics.

/// Builders for every topology in the family, by name:
/// fat | f2 | f2scaled | leafspine | leafspine-f2 | vl2 | vl2-f2 | aspen.
/// `ring_width` applies to f2; `aspen_f` to aspen. Throws on unknown names.
Testbed::TopoBuilder topology_builder(const std::string& name, int ports,
                                      int ring_width = 2, int aspen_f = 1);

/// Transport fidelity of a probe run.
///
/// kPacket is the default and simulates every packet as events — the
/// byte-identical baseline all recorded campaign artifacts assume. kFlow
/// switches the UDP probe to the fluid model (transport/fluid.hpp): no
/// probe packets are simulated, paths are re-traced on routing-state
/// transitions, and the delivered set is derived per constant-routing
/// regime — the fast fidelity that reaches k=48/64 fat trees. Flow runs
/// refuse gray faults, probe/BFD detection and TCP (per-packet physics).
enum class Fidelity { kPacket, kFlow };

/// Parses "packet" / "flow"; returns kPacket for anything else via the
/// bool out-param being set false.
bool parse_fidelity(const std::string& name, Fidelity& out);
const char* fidelity_name(Fidelity fidelity);

/// Knobs for one probe-flow failure experiment.
struct RunKnobs {
  sim::Time fail_at = sim::millis(380);
  sim::Time horizon = sim::seconds(3);
  TestbedConfig config;
  transport::TcpConfig tcp;
  /// How the planned links fail at fail_at (bidirectional cut by default;
  /// see failure::FaultSpec for the unidirectional/gray/flap models).
  failure::FaultSpec fault;
  Fidelity fidelity = Fidelity::kPacket;
  /// Optional trace-shaped background workload riding the probe run
  /// (transport/workload.hpp): TCP flows across every host stack, drawn
  /// from their own RNG stream (kWorkloadStream split of config.seed) so
  /// the probe's packet schedule perturbs but the workload's draws do
  /// not depend on run order. Packet fidelity only — the fluid probe has
  /// no host stacks to carry TCP flows, and refuses the combination.
  /// When enabled, UdpRun.slo summarizes the workload's flow completion
  /// times against `workload.deadline` with the failure window
  /// [fail_at, horizon) splitting the miss fraction.
  bool workload_enabled = false;
  transport::WorkloadOptions workload;
};

/// RNG stream id the workload generator is split from (distinct from
/// every per-shard stream the campaign engine derives).
inline constexpr std::uint64_t kWorkloadStream = 0x776b6c64;  // "wkld"

/// CBR UDP probe through a failure condition (Fig 2(a), Fig 4, Fig 5,
/// Table III columns 1-2).
struct UdpRun {
  bool ok = false;
  sim::Time connectivity_loss = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_lost = 0;
  std::string scenario;
  /// Scenario metadata for campaign aggregation: the failure class
  /// ("C1".."C8" or a link class) and whether the probe flow crossed a
  /// failed link pre-failure (off-path scenarios expect zero loss).
  std::string site_class;
  bool probe_on_path = true;
  stats::TimeSeries delay_series;  ///< per-packet one-way delay (us)
  stats::ThroughputMeter throughput{sim::millis(20)};
  /// Flow fidelity only: number of path traces that expired their TTL,
  /// i.e. some routing regime held a forwarding loop on the probe's
  /// path. Zero for packet runs and loop-free flow runs. Non-zero means
  /// the run's loss accounting is conservative rather than packet-exact:
  /// the packet engine additionally delivers loop-buffered packets at
  /// reconvergence (see tests/test_fidelity_property.cpp).
  std::uint64_t fluid_loop_traces = 0;
  /// Populated when knobs.workload_enabled: tail-latency SLOs of the
  /// background flows (FCT percentiles, slowdown, deadline-miss split by
  /// the failure window). slo_enabled records whether the workload ran —
  /// artifacts omit the section rather than fabricate zeros.
  bool slo_enabled = false;
  stats::SloSummary slo;
  /// Populated when knobs.config.observe is set: metrics snapshot at the
  /// horizon, the full event journal, and the engine profile.
  obs::RunObservation observation;
};

UdpRun run_udp_condition(const Testbed::TopoBuilder& builder,
                         failure::Condition condition,
                         const RunKnobs& knobs = {});

/// CBR UDP probe through the failure of one enumerated switch-to-switch
/// link (see failure::build_link_site_plan) — the campaign engine's
/// exhaustive failure-site axis. Fails only for an out-of-range site.
UdpRun run_udp_link_site(const Testbed::TopoBuilder& builder, int site,
                         const RunKnobs& knobs = {});

/// Paced TCP probe through a failure condition (Fig 2(b), Fig 4 bottom,
/// Table III column 3).
struct TcpRun {
  bool ok = false;
  sim::Time collapse = 0;
  std::uint64_t rto_fires = 0;
  stats::ThroughputMeter throughput{sim::millis(20)};
  /// Populated when knobs.config.observe is set.
  obs::RunObservation observation;
};

TcpRun run_tcp_condition(const Testbed::TopoBuilder& builder,
                         failure::Condition condition,
                         const RunKnobs& knobs = {});

}  // namespace f2t::core
