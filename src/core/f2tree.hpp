#pragma once

/// Umbrella header: the full public API of the F²Tree reproduction.
///
/// Typical usage (see examples/quickstart.cpp):
///
///   f2t::core::Testbed bed([](f2t::net::Network& n) {
///     return f2t::topo::build_f2tree(n, /*ports=*/8);
///   });
///   bed.converge();
///   ... attach workloads from f2t::transport, inject failures via
///   bed.injector(), run bed.sim().run(...), read f2t::stats metrics.

#include "core/experiment.hpp"
#include "core/scalability.hpp"
#include "failure/random_failures.hpp"
#include "failure/scenarios.hpp"
#include "stats/cdf.hpp"
#include "stats/flow_metrics.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"
#include "topo/f2tree.hpp"
#include "topo/leafspine.hpp"
#include "topo/validate.hpp"
#include "topo/vl2.hpp"
#include "transport/background.hpp"
#include "transport/partition_aggregate.hpp"
#include "transport/udp_app.hpp"
