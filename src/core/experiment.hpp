#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "failure/injector.hpp"
#include "obs/observer.hpp"
#include "obs/sampler.hpp"
#include "routing/bfd.hpp"
#include "routing/central.hpp"
#include "routing/detection.hpp"
#include "routing/ospf.hpp"
#include "routing/pathvector.hpp"
#include "topo/backup_routes.hpp"
#include "topo/topology.hpp"
#include "transport/app.hpp"

namespace f2t::core {

/// How the harness configures the F²Tree backup static routes.
enum class BackupMode {
  kAuto,         ///< paper config iff the topology is F²-rewired
  kNone,         ///< never (what plain fat tree runs use)
  kPaper,        ///< Table II: /16 right, /15 left (asymmetric lengths)
  kEqualLength,  ///< ablation: both across links under one ECMP prefix
};

/// Which control plane runs the network: the distributed OSPF-like
/// protocol the paper evaluates, the §V centralized scheme, or the §V
/// BGP-like path-vector protocol.
enum class ControlPlane { kOspf, kCentral, kPathVector };

/// Everything a full-system run needs, assembled in one place.
struct TestbedConfig {
  ControlPlane control_plane = ControlPlane::kOspf;
  routing::OspfConfig ospf;
  routing::CentralConfig central;
  routing::PathVectorConfig path_vector;
  routing::DetectionConfig detection;
  /// Timing + dampening for DetectionMode::kProbe; ignored under kOracle.
  routing::BfdConfig bfd;
  net::LinkParams link;
  BackupMode backup = BackupMode::kAuto;
  std::uint64_t seed = 1;
  /// Attach the metrics registry + event journal (obs/). Off by default:
  /// an unobserved run has no hooks installed anywhere, so it pays zero
  /// cost — not even a branch on the forwarding fast path.
  bool observe = false;
  /// Event-journal bound (events beyond it are dropped and counted; see
  /// obs::EventJournal). Only meaningful with `observe`.
  std::size_t journal_capacity = obs::EventJournal::kDefaultCapacity;
  /// Periodic telemetry sampling interval; 0 (the default) disables the
  /// sampler entirely — no sampler object, no scheduler events, so the
  /// run's event stream is untouched. Independent of `observe`: sampling
  /// does not require the journal/metrics machinery. Note an enabled
  /// sampler *does* add its tick events to the schedule, which can
  /// reorder same-timestamp work relative to an unsampled run — leave it
  /// off for byte-identity-sensitive runs.
  sim::Time sample_interval = 0;
  /// Ring capacity (ticks) retained by the sampler.
  std::size_t sample_capacity = 4096;
  /// Logger threshold applied to the simulator at construction.
  sim::LogLevel log_level = sim::LogLevel::kWarn;
};

/// A ready-to-run network: topology + control plane + detection + host
/// transport stacks + failure injector, converged at t = 0.
///
/// This is the library's top-level entry point — the equivalent of racking
/// the paper's testbed: pass a topology builder (any of src/topo) and a
/// config, call converge(), attach workloads, run the simulator.
class Testbed {
 public:
  using TopoBuilder = std::function<topo::BuiltTopology(net::Network&)>;

  Testbed(const TopoBuilder& builder, const TestbedConfig& config = {});

  sim::Simulator& sim() { return *sim_; }
  net::Network& network() { return *network_; }
  topo::BuiltTopology& topo() { return topo_; }
  failure::FailureInjector& injector() { return *injector_; }
  const TestbedConfig& config() const { return config_; }

  /// Warm-starts the control plane: full LSDBs and converged FIBs at the
  /// current simulation time. Call once before starting workloads.
  void converge();

  transport::HostStack& stack_of(const net::Host& host);

  /// OSPF instance of a switch. Throws when running the central plane.
  routing::Ospf& ospf_of(const net::L3Switch& sw);

  /// The controller (central plane only). Throws otherwise.
  routing::CentralController& controller();

  /// Path-vector instance of a switch (path-vector plane only).
  routing::PathVector& path_vector_of(const net::L3Switch& sw);

  /// Host stacks in topology order (for workload constructors).
  std::vector<transport::HostStack*> stacks();

  /// Aggregate control-plane counters across all switches.
  routing::Ospf::Counters total_ospf_counters() const;

  /// The probe-based detector. Throws under DetectionMode::kOracle.
  routing::BfdManager& bfd();

  /// True when the config requested observability and obs() is usable.
  bool observing() const { return obs_ != nullptr; }

  /// The run's metrics registry + event journal. Throws when the config
  /// did not set `observe` (there is deliberately no lazy creation: hooks
  /// can only be attached at construction time).
  obs::Observability& obs();

  /// True when the config requested periodic telemetry sampling.
  bool sampling() const { return sampler_ != nullptr; }

  /// The telemetry sampler (started by converge()). Throws when the
  /// config left `sample_interval` at 0.
  obs::TelemetrySampler& sampler();

 private:
  TestbedConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::Network> network_;
  topo::BuiltTopology topo_;
  std::vector<std::unique_ptr<routing::Ospf>> ospf_;
  std::unordered_map<const net::L3Switch*, routing::Ospf*> ospf_by_switch_;
  std::unique_ptr<routing::CentralController> controller_;
  std::vector<std::unique_ptr<routing::PathVector>> path_vector_;
  std::unordered_map<const net::L3Switch*, routing::PathVector*>
      path_vector_by_switch_;
  std::unique_ptr<routing::DetectionAgent> detection_;  // kOracle
  std::unique_ptr<routing::BfdManager> bfd_;            // kProbe
  std::vector<std::unique_ptr<transport::HostStack>> stacks_;
  std::unordered_map<const net::Host*, transport::HostStack*> stack_by_host_;
  std::unique_ptr<failure::FailureInjector> injector_;
  std::unique_ptr<obs::Observability> obs_;
  std::unique_ptr<obs::TelemetrySampler> sampler_;
};

}  // namespace f2t::core
