#include "core/scalability.hpp"

#include <stdexcept>

namespace f2t::core {

std::vector<ScalabilityRow> table1(int n, int aspen_f) {
  if (n < 4 || n % 2 != 0) {
    throw std::invalid_argument("table1: n must be even and >= 4");
  }
  if (aspen_f < 1) {
    throw std::invalid_argument("table1: aspen_f must be >= 1");
  }
  using S = Scalability;
  return {
      {"Fat tree", S::fat_tree_switches(n), S::fat_tree_nodes(n), "n/a",
       "n/a"},
      {"VL2", S::vl2_switches(n), S::vl2_nodes(n), "n/a", "n/a"},
      {"F2Tree", S::f2tree_switches(n), S::f2tree_nodes(n), "no", "no"},
      {"Aspen tree <f,0>", S::aspen_switches(n, aspen_f),
       S::aspen_nodes(n, aspen_f), "yes", "no"},
      {"F10", S::f10_switches(n), S::f10_nodes(n), "yes", "yes"},
  };
}

}  // namespace f2t::core
