#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace f2t::core {

/// Minimal command-line parser for the f2tsim tool:
/// `f2tsim <command> [--key value]... [--flag]...`.
///
/// Values are typed on access; unknown keys are detected by validate()
/// against the set of keys the command actually read, so typos fail loudly
/// instead of silently running a default experiment.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  bool has_command() const { return !command_.empty(); }

  /// Typed getters; each records the key as known.
  std::string get(const std::string& key, const std::string& fallback);
  int get_int(const std::string& key, int fallback);
  double get_double(const std::string& key, double fallback);
  bool get_flag(const std::string& key);

  /// Returns the unknown keys (present on the command line but never
  /// requested by the command). Empty = all good.
  std::vector<std::string> unknown_keys() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;  ///< --key value
  std::map<std::string, bool> flags_;          ///< --flag (no value)
  std::map<std::string, bool> touched_;
};

}  // namespace f2t::core
