#pragma once

#include <string>
#include <vector>

namespace f2t::core {

/// Closed forms from Table I of the paper: switches consumed and nodes
/// (hosts) supported by 3-layer DCNs built from homogeneous N-port
/// switches. The F²Tree forms are verified against constructed topologies
/// by the test suite.
struct Scalability {
  static double fat_tree_switches(int n) { return 1.25 * n * n; }
  static double fat_tree_nodes(int n) { return n * n * n / 4.0; }

  static double vl2_switches(int n) { return 2.5 * n; }
  static double vl2_nodes(int n) { return n * n / 2.0; }

  static double f2tree_switches(int n) {
    return 1.25 * n * n - 3.5 * n + 2.0;
  }
  static double f2tree_nodes(int n) {
    return n * n * n / 4.0 - static_cast<double>(n) * n + n;
  }

  /// Aspen tree <f, 0>: fault-tolerance f (>= 1) between aggregation and
  /// core layers.
  static double aspen_switches(int n, int f) {
    return 1.25 * n * n / (f + 1);
  }
  static double aspen_nodes(int n, int f) {
    return n * n * n / (4.0 * (f + 1));
  }

  static double f10_switches(int n) { return 1.25 * n * n; }
  static double f10_nodes(int n) { return n * n * n / 4.0; }

  /// Fraction of fat-tree nodes F²Tree gives up at port count n
  /// (the paper: ~2% at n = 128).
  static double f2tree_node_cost_fraction(int n) {
    return 1.0 - f2tree_nodes(n) / fat_tree_nodes(n);
  }
};

/// One row of Table I.
struct ScalabilityRow {
  std::string name;
  double switches = 0;
  double nodes = 0;
  const char* modifies_routing = "";
  const char* modifies_data_plane = "";
};

/// The full Table I for port count n (Aspen tree at fault tolerance f).
std::vector<ScalabilityRow> table1(int n, int aspen_f = 1);

}  // namespace f2t::core
