#include "exec/thread_pool.hpp"

#include <algorithm>

namespace f2t::exec {

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

bool ThreadPool::try_pop(std::size_t self, std::size_t& out) {
  {
    WorkerQueue& own = queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.items.empty()) {
      out = own.items.front();
      own.items.pop_front();
      return true;
    }
  }
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    WorkerQueue& victim = queues_[(self + off) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.items.empty()) {
      out = victim.items.back();
      victim.items.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self,
                             const std::function<void(std::size_t)>& fn) {
  while (remaining_.load(std::memory_order_acquire) > 0) {
    std::size_t index = 0;
    if (!try_pop(self, index)) {
      // Everything is claimed but some task is still running on another
      // worker; nothing left for us to do.
      break;
    }
    if (!failed_.load(std::memory_order_relaxed)) {
      try {
        fn(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu_);
        if (!first_error_) first_error_ = std::current_exception();
        failed_.store(true, std::memory_order_relaxed);
      }
    }
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  steals_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;

  if (threads_ <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), n);
  queues_ = std::vector<WorkerQueue>(workers);
  for (std::size_t i = 0; i < n; ++i) {
    queues_[i % workers].items.push_back(i);
  }
  remaining_.store(n, std::memory_order_release);

  std::vector<std::thread> extra;
  extra.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    extra.emplace_back([this, w, &fn] { worker_loop(w, fn); });
  }
  worker_loop(0, fn);
  for (std::thread& t : extra) t.join();
  queues_.clear();

  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace f2t::exec
