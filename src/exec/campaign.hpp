#pragma once

#include <functional>

#include "core/campaign.hpp"

namespace f2t::exec {

/// Campaign engine: shards a core::CampaignSpec into independent
/// simulations and runs them across a work-stealing ThreadPool.
///
/// Determinism contract: every shard builds its own Simulator, Network
/// and RNG stream (seed = Random::derive_stream_seed(base_seed, index)),
/// shares no mutable state with any other shard, and writes its result
/// into a pre-assigned slot of the results vector. The deterministic
/// portion of the CampaignResult is therefore byte-identical for a given
/// spec whatever `jobs` is and however the OS schedules the workers.

struct CampaignOptions {
  int jobs = 1;  ///< <= 0 selects hardware_concurrency
  /// Optional progress hook, invoked after each shard completes (from the
  /// worker thread that ran it — must be thread-safe if jobs > 1).
  std::function<void(const core::ShardResult&)> on_result;
  /// Optional heartbeat, invoked just before each shard starts running
  /// (same threading caveat). With on_result this gives the CLI a live
  /// started/finished view of long campaigns — a stuck shard shows up as
  /// a started-but-never-finished index instead of silent stall.
  std::function<void(const core::ShardSpec&)> on_shard_start;
};

/// Runs one shard in isolation — also the reproduction path: re-running
/// a single shard of a campaign must produce the very record the full
/// campaign stored at that index.
core::ShardResult run_shard(const core::CampaignSpec& spec,
                            const core::ShardSpec& shard);

core::CampaignResult run_campaign(const core::CampaignSpec& spec,
                                  const CampaignOptions& options = {});

}  // namespace f2t::exec
