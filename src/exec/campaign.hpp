#pragma once

#include <functional>

#include "core/campaign.hpp"
#include "transport/workload.hpp"

namespace f2t::exec {

/// Maps a spec's workload axis onto the generator options the runner
/// consumes (CDF by name, kind, deadline in simulated time). Shared by
/// run_shard and the CLI's one-off recover path so a standalone run
/// reproduces a campaign shard's workload exactly.
transport::WorkloadOptions workload_options_of(
    const core::CampaignSpec::WorkloadAxis& axis, sim::Time horizon);

/// Campaign engine: shards a core::CampaignSpec into independent
/// simulations and runs them across a work-stealing ThreadPool.
///
/// Determinism contract: every shard builds its own Simulator, Network
/// and RNG stream (seed = Random::derive_stream_seed(base_seed, index)),
/// shares no mutable state with any other shard, and writes its result
/// into a pre-assigned slot of the results vector. The deterministic
/// portion of the CampaignResult is therefore byte-identical for a given
/// spec whatever `jobs` is and however the OS schedules the workers.

struct CampaignOptions {
  int jobs = 1;  ///< <= 0 selects hardware_concurrency
  /// Optional progress hook, invoked after each shard completes.
  ///
  /// Thread-safety contract: run_campaign serializes *all* callback
  /// invocations (on_shard_start and on_result share one mutex), so a
  /// hook never observes itself running concurrently and may touch
  /// un-synchronized state (ostreams, counters, vectors). Invocation
  /// still happens on whichever pool thread ran the shard — hooks must
  /// not assume the caller's thread — and completion *order* across
  /// shards remains schedule-dependent; only the runs vector is in
  /// shard order.
  std::function<void(const core::ShardResult&)> on_result;
  /// Optional heartbeat, invoked just before each shard starts running
  /// (same serialization contract as on_result). With on_result this
  /// gives the CLI a live started/finished view of long campaigns — a
  /// stuck shard shows up as a started-but-never-finished index instead
  /// of silent stall.
  std::function<void(const core::ShardSpec&)> on_shard_start;
};

/// Runs one shard in isolation — also the reproduction path: re-running
/// a single shard of a campaign must produce the very record the full
/// campaign stored at that index.
core::ShardResult run_shard(const core::CampaignSpec& spec,
                            const core::ShardSpec& shard);

/// run_shard with the campaign engine's failure capture: a throwing
/// shard becomes a deterministic error record (identity from the
/// ShardSpec, message from the spec-dependent exception) instead of
/// propagating. This is the exact per-shard semantic of run_campaign,
/// exported so process workers produce byte-identical records.
core::ShardResult run_shard_captured(const core::CampaignSpec& spec,
                                     const core::ShardSpec& shard);

core::CampaignResult run_campaign(const core::CampaignSpec& spec,
                                  const CampaignOptions& options = {});

}  // namespace f2t::exec
