#include "exec/process.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "exec/campaign.hpp"

namespace f2t::exec {

namespace fs = std::filesystem;

namespace {

std::string spec_echo(const core::CampaignSpec& spec) {
  std::ostringstream os;
  spec.write_json(os, 0);
  return os.str();
}

std::string stream_path(const std::string& state_dir, int worker) {
  return state_dir + "/worker-" + std::to_string(worker) + ".jsonl";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("campaign: cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Near-equal split of a contiguous [0, n) block: worker i gets a
/// half-open range, first `n % workers` workers one shard larger.
/// Workers beyond the shard count get empty ranges (and are skipped).
std::vector<std::vector<std::pair<int, int>>> split_block(int n,
                                                          int workers) {
  std::vector<std::vector<std::pair<int, int>>> out(
      static_cast<std::size_t>(workers));
  const int base = n / workers;
  const int rem = n % workers;
  int start = 0;
  for (int w = 0; w < workers; ++w) {
    const int len = base + (w < rem ? 1 : 0);
    if (len > 0) out[static_cast<std::size_t>(w)] = {{start, start + len}};
    start += len;
  }
  return out;
}

/// Near-equal split of an arbitrary sorted index list (the resume
/// missing-set), each worker's share compressed to contiguous ranges.
std::vector<std::vector<std::pair<int, int>>> split_indices(
    const std::vector<int>& indices, int workers) {
  std::vector<std::vector<std::pair<int, int>>> out(
      static_cast<std::size_t>(workers));
  const int n = static_cast<int>(indices.size());
  const int base = n / workers;
  const int rem = n % workers;
  int at = 0;
  for (int w = 0; w < workers; ++w) {
    const int len = base + (w < rem ? 1 : 0);
    const std::vector<int> share(indices.begin() + at,
                                 indices.begin() + at + len);
    out[static_cast<std::size_t>(w)] = core::contiguous_ranges(share);
    at += len;
  }
  return out;
}

/// Loads every completed record already checkpointed in the state dir's
/// worker streams (resume). A torn trailing line — no newline, or bytes
/// that do not parse as a record (a worker killed mid-write) — ends
/// that stream's valid prefix; the file is truncated back to it so the
/// resumed worker appends after whole records only. Duplicate indices
/// keep the first record seen (streams are scanned in worker order, so
/// the choice is deterministic).
void load_checkpointed(const std::string& state_dir,
                       std::vector<core::ShardResult>& slots,
                       std::vector<bool>& present) {
  std::vector<fs::path> streams;
  for (const auto& entry : fs::directory_iterator(state_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("worker-", 0) == 0 &&
        entry.path().extension() == ".jsonl") {
      streams.push_back(entry.path());
    }
  }
  std::sort(streams.begin(), streams.end());
  for (const fs::path& path : streams) {
    const std::string text = read_file(path.string());
    std::size_t valid = 0;  // byte length of the whole-record prefix
    std::size_t at = 0;
    while (at < text.size()) {
      const std::size_t nl = text.find('\n', at);
      if (nl == std::string::npos) break;  // torn: no trailing newline
      core::ShardResult r;
      try {
        r = core::parse_shard_record(
            std::string_view(text).substr(at, nl - at));
      } catch (const std::exception&) {
        break;  // torn: buffered garbage flushed before the kill
      }
      const auto i = static_cast<std::size_t>(r.index);
      if (r.index < 0 || i >= slots.size()) break;  // foreign record
      if (!present[i]) {
        slots[i] = std::move(r);
        present[i] = true;
      }
      at = nl + 1;
      valid = at;
    }
    if (valid < text.size()) {
      fs::resize_file(path, valid);
    }
  }
}

struct Worker {
  pid_t pid = -1;
  int index = 0;
  std::string path;        ///< stream file
  std::streamoff offset = 0;  ///< bytes consumed so far
  std::string tail;        ///< partial trailing line
  bool exited = false;
  int status = 0;          ///< waitpid status once exited
};

/// Consumes any new complete lines from one worker stream, parsing each
/// into its pre-assigned slot. Lines only count once terminated by a
/// newline; a parse failure on a *complete* line is stream corruption
/// and throws (the torn-line case only exists at a kill boundary, which
/// resume handles — a live worker flushes whole records).
void drain_stream(Worker& w, std::vector<core::ShardResult>& slots,
                  std::vector<bool>& present,
                  const std::function<void(const core::ShardResult&)>& hook,
                  bool final_drain) {
  std::ifstream in(w.path, std::ios::binary);
  if (!in) return;  // exec-mode worker has not created its stream yet
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size <= w.offset) return;
  in.seekg(w.offset);
  std::string chunk(static_cast<std::size_t>(size - w.offset), '\0');
  in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  chunk.resize(static_cast<std::size_t>(in.gcount()));
  w.offset += static_cast<std::streamoff>(chunk.size());
  w.tail += chunk;
  std::size_t at = 0;
  while (true) {
    const std::size_t nl = w.tail.find('\n', at);
    if (nl == std::string::npos) break;
    core::ShardResult r;
    try {
      r = core::parse_shard_record(
          std::string_view(w.tail).substr(at, nl - at));
    } catch (const std::exception& e) {
      throw std::runtime_error("campaign: corrupt record in " + w.path +
                               ": " + e.what());
    }
    at = nl + 1;
    const auto i = static_cast<std::size_t>(r.index);
    if (r.index < 0 || i >= slots.size()) {
      throw std::runtime_error("campaign: record in " + w.path +
                               " names shard " + std::to_string(r.index) +
                               ", outside this campaign");
    }
    if (!present[i]) {
      present[i] = true;
      slots[i] = std::move(r);
      if (hook) hook(slots[i]);
    }
  }
  w.tail.erase(0, at);
  if (final_drain && !w.tail.empty()) {
    // The worker exited leaving a partial line; surface it as the
    // abnormal-exit path will (the caller checks statuses first).
    w.tail.clear();
  }
}

[[noreturn]] void exec_worker(const std::string& exe,
                              const std::string& spec_path,
                              const std::string& shards,
                              const std::string& out_path) {
  std::vector<std::string> args = {exe,        "campaign-worker",
                                   "--spec",   spec_path,
                                   "--shards", shards,
                                   "--out",    out_path};
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(exe.c_str(), argv.data());
  // Exec failed: report on stderr (the only channel left) and die with a
  // status the parent maps to "worker exited abnormally".
  std::fprintf(stderr, "campaign-worker: execv %s: %s\n", exe.c_str(),
               std::strerror(errno));
  ::_exit(127);
}

}  // namespace

int run_campaign_worker(const core::CampaignSpec& spec,
                        const std::vector<std::pair<int, int>>& ranges,
                        std::ostream& out) {
  const std::vector<core::ShardSpec> shards = core::enumerate_shards(spec);
  int done = 0;
  for (const auto& [a, b] : ranges) {
    if (a < 0 || static_cast<std::size_t>(b) > shards.size()) {
      throw std::invalid_argument(
          "campaign-worker: shard range " + std::to_string(a) + ":" +
          std::to_string(b) + " outside 0:" + std::to_string(shards.size()));
    }
    for (int i = a; i < b; ++i) {
      const core::ShardResult r =
          run_shard_captured(spec, shards[static_cast<std::size_t>(i)]);
      core::write_shard_record(out, r);
      // One flushed line per shard is the checkpoint granularity: a kill
      // loses at most the shard in flight.
      out.flush();
    }
    done += b - a;
  }
  return done;
}

core::CampaignResult run_campaign_processes(
    const core::CampaignSpec& spec, const ProcessCampaignOptions& options) {
  if (options.workers < 1) {
    throw std::invalid_argument("campaign: --workers must be >= 1");
  }
  if (options.state_dir.empty()) {
    throw std::invalid_argument("campaign: process mode needs a state dir");
  }
  const auto wall_start = std::chrono::steady_clock::now();

  const std::vector<core::ShardSpec> shards = core::enumerate_shards(spec);
  std::vector<core::ShardResult> slots(shards.size());
  std::vector<bool> present(shards.size(), false);

  const std::string manifest_path = options.state_dir + "/manifest.json";
  const std::string spec_path = options.state_dir + "/spec.json";
  const std::string echo = spec_echo(spec);

  if (options.resume) {
    if (!fs::exists(manifest_path)) {
      throw std::runtime_error("campaign: --resume but no manifest at " +
                               manifest_path);
    }
    const core::CheckpointManifest manifest =
        core::CheckpointManifest::parse(read_file(manifest_path));
    if (spec_echo(manifest.spec) != echo) {
      throw std::runtime_error(
          "campaign: --resume spec does not match the checkpointed "
          "campaign in " +
          options.state_dir);
    }
    if (manifest.shards != static_cast<int>(shards.size())) {
      throw std::runtime_error("campaign: checkpoint manifest shard count " +
                               std::to_string(manifest.shards) +
                               " does not match the spec");
    }
    load_checkpointed(options.state_dir, slots, present);
  } else {
    if (fs::exists(manifest_path)) {
      throw std::runtime_error(
          "campaign: " + options.state_dir +
          " already holds a checkpointed campaign; pass --resume to "
          "continue it or remove the directory");
    }
    fs::create_directories(options.state_dir);
    core::CheckpointManifest manifest;
    manifest.spec = spec;
    manifest.shards = static_cast<int>(shards.size());
    manifest.workers = options.workers;
    std::ofstream mos(manifest_path, std::ios::binary);
    manifest.write_json(mos);
    std::ofstream sos(spec_path, std::ios::binary);
    sos << echo << "\n";
    if (!mos.good() || !sos.good()) {
      throw std::runtime_error("campaign: cannot write state into " +
                               options.state_dir);
    }
  }
  if (!fs::exists(spec_path)) {
    // A resume of a state dir whose spec echo went missing (exec-mode
    // workers need it on disk).
    std::ofstream sos(spec_path, std::ios::binary);
    sos << echo << "\n";
  }

  // Work assignment: a fresh run splits the contiguous shard block; a
  // resume splits whatever indices are still missing. Either way the
  // ranges are pure functions of (spec, checkpoint state), so identical
  // shards re-run identically.
  std::vector<int> missing;
  for (std::size_t i = 0; i < present.size(); ++i) {
    if (!present[i]) missing.push_back(static_cast<int>(i));
  }
  const auto assignment =
      options.resume
          ? split_indices(missing, options.workers)
          : split_block(static_cast<int>(shards.size()), options.workers);

  std::vector<Worker> workers;
  for (int w = 0; w < options.workers; ++w) {
    const auto& ranges = assignment[static_cast<std::size_t>(w)];
    if (ranges.empty()) continue;
    Worker worker;
    worker.index = w;
    worker.path = stream_path(options.state_dir, w);
    worker.offset = fs::exists(worker.path)
                        ? static_cast<std::streamoff>(
                              fs::file_size(worker.path))
                        : 0;
    const pid_t pid = ::fork();
    if (pid < 0) {
      throw std::runtime_error(std::string("campaign: fork: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      // Child. The parent is single-threaded at this point (workers are
      // forked before any reduction starts), so fork-only mode is safe.
      if (!options.exe.empty()) {
        exec_worker(options.exe, spec_path, core::format_shard_ranges(ranges),
                    worker.path);
      }
      int code = 0;
      try {
        std::ofstream out(worker.path, std::ios::binary | std::ios::app);
        run_campaign_worker(spec, ranges, out);
        out.flush();
        if (!out.good()) code = 3;
      } catch (const std::exception&) {
        code = 2;
      }
      ::_exit(code);
    }
    worker.pid = pid;
    workers.push_back(std::move(worker));
  }

  // Streaming reducer: poll the worker streams for complete lines while
  // reaping exits; records land in pre-assigned slots so the final runs
  // vector is in shard order whatever the arrival interleaving was.
  std::size_t alive = workers.size();
  while (alive > 0) {
    for (Worker& w : workers) {
      drain_stream(w, slots, present, options.on_record, false);
      if (!w.exited) {
        int status = 0;
        const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
        if (got == w.pid) {
          w.exited = true;
          w.status = status;
          --alive;
        }
      }
    }
    if (alive > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  for (Worker& w : workers) {
    drain_stream(w, slots, present, options.on_record, true);
  }
  for (const Worker& w : workers) {
    if (!WIFEXITED(w.status) || WEXITSTATUS(w.status) != 0) {
      throw std::runtime_error(
          "campaign: worker " + std::to_string(w.index) +
          " exited abnormally; completed shards are checkpointed in " +
          options.state_dir + " — re-run with --resume");
    }
  }
  for (std::size_t i = 0; i < present.size(); ++i) {
    if (!present[i]) {
      throw std::runtime_error(
          "campaign: shard " + std::to_string(i) +
          " missing after all workers exited; re-run with --resume");
    }
  }

  core::CampaignResult result;
  result.spec = spec;
  result.runs = std::move(slots);
  result.jobs = options.workers;
  result.workers = options.workers;
  result.hardware_threads = std::thread::hardware_concurrency();
  result.steals = 0;
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  result.wall_seconds = wall.count();
  return result;
}

}  // namespace f2t::exec
