#include "exec/campaign.hpp"

#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/runner.hpp"
#include "exec/thread_pool.hpp"
#include "obs/trace.hpp"

namespace f2t::exec {

namespace {

core::ControlPlane control_from_name(const std::string& name) {
  if (name == "ospf") return core::ControlPlane::kOspf;
  if (name == "central") return core::ControlPlane::kCentral;
  if (name == "bgp") return core::ControlPlane::kPathVector;
  throw std::invalid_argument("campaign: unknown control plane: " + name);
}

}  // namespace

transport::WorkloadOptions workload_options_of(
    const core::CampaignSpec::WorkloadAxis& axis, sim::Time horizon) {
  transport::WorkloadOptions wo;
  wo.kind = axis.kind == "incast" ? transport::WorkloadKind::kIncast
                                  : transport::WorkloadKind::kPoisson;
  wo.sizes = transport::FlowSizeCdf::by_name(axis.size_dist);
  wo.load = axis.load;
  wo.fanin = static_cast<std::size_t>(axis.fanin);
  wo.incast_bytes = axis.flow_bytes;
  wo.deadline = sim::millis(axis.deadline_ms);
  wo.stop = horizon;
  return wo;
}

core::ShardResult run_shard(const core::CampaignSpec& spec,
                            const core::ShardSpec& shard) {
  core::RunKnobs knobs;
  knobs.fail_at = spec.fail_at;
  knobs.horizon = spec.horizon;
  knobs.config.control_plane = control_from_name(shard.control);
  knobs.config.detection.down_delay = sim::millis(spec.detection_ms);
  knobs.config.detection.up_delay = knobs.config.detection.down_delay;
  if (spec.detection == "probe") {
    knobs.config.detection.mode = routing::DetectionMode::kProbe;
    knobs.config.bfd.tx_interval = sim::millis(spec.bfd_tx_ms);
    knobs.config.bfd.miss_multiplier = spec.bfd_multiplier;
    knobs.config.bfd.dampening.enabled = spec.dampening;
  }
  knobs.config.ospf.throttle.initial_delay = sim::millis(spec.spf_ms);
  knobs.config.seed = shard.seed;
  knobs.config.observe = spec.trace;
  knobs.config.sample_interval = sim::millis(spec.sample_interval_ms);
  knobs.fault.kind = spec.fault;
  knobs.fault.gray_loss = spec.gray_loss;
  knobs.fault.flap_period = sim::millis(spec.flap_period_ms);
  knobs.fault.flap_cycles = spec.flap_cycles;
  if (!core::parse_fidelity(spec.fidelity, knobs.fidelity)) {
    throw std::invalid_argument("campaign: unknown fidelity: " +
                                spec.fidelity);
  }
  if (spec.workload.enabled) {
    knobs.workload_enabled = true;
    knobs.workload = workload_options_of(spec.workload, spec.horizon);
  }

  const auto builder = core::topology_builder(
      shard.topology.name, shard.topology.ports, shard.topology.ring_width,
      shard.topology.aspen_f);
  const core::UdpRun run =
      shard.is_link_site
          ? core::run_udp_link_site(builder, shard.link_site, knobs)
          : core::run_udp_condition(builder, shard.condition, knobs);

  core::ShardResult r;
  r.index = shard.index;
  r.topology = shard.topology.label();
  r.control = shard.control;
  r.site = shard.site();
  r.site_class = run.site_class;
  r.replicate = shard.replicate;
  r.seed = shard.seed;
  r.ok = run.ok;
  r.on_path = run.ok && run.probe_on_path;
  r.connectivity_loss = run.connectivity_loss;
  r.packets_sent = run.packets_sent;
  r.packets_lost = run.packets_lost;
  r.events_executed = run.observation.profile.events_executed;
  r.wall_seconds = run.observation.profile.wall_seconds;
  r.scenario = run.scenario;
  if (spec.trace && run.observation.enabled) {
    const obs::SpanTrace trace(run.observation.events,
                               run.observation.profile);
    r.spans = trace.spans().size();
    const auto& failures = trace.timeline().failures();
    if (!failures.empty()) {
      const obs::FailureRecovery& f = failures.front();
      r.detect_ns = f.detected() ? f.time_to_detect() : -1;
      r.converge_ns = f.converged() ? f.time_to_converge() : -1;
    }
  }
  if (spec.sample_interval_ms > 0 && run.observation.samples.enabled) {
    r.samples = run.observation.samples.rows.size();
    if (const auto rollup =
            run.observation.samples.rollup_of("net.queue_depth")) {
      r.queue_rollup = true;
      r.queue_p99 = rollup->p99;
      r.queue_max = rollup->max;
    }
  }
  if (run.slo_enabled) {
    r.slo = true;
    r.slo_flows = run.slo.flows;
    r.slo_completed = run.slo.completed;
    r.fct_p50_ms = run.slo.fct_ms_p50;
    r.fct_p99_ms = run.slo.fct_ms_p99;
    r.fct_p999_ms = run.slo.fct_ms_p999;
    r.slo_deadline_in = run.slo.deadline_flows_in_window;
    r.slo_deadline_out = run.slo.deadline_flows_out_window;
    r.slo_miss_in = run.slo.miss_in_window;
    r.slo_miss_out = run.slo.miss_out_window;
  }
  return r;
}

core::ShardResult run_shard_captured(const core::CampaignSpec& spec,
                                     const core::ShardSpec& shard) {
  // A throwing shard must not poison the campaign: capture the failure
  // as this shard's result instead. The record is deterministic —
  // identity comes from the ShardSpec and the message from the
  // spec-dependent exception, not from scheduling.
  try {
    return run_shard(spec, shard);
  } catch (const std::exception& e) {
    core::ShardResult r;
    r.index = shard.index;
    r.topology = shard.topology.label();
    r.control = shard.control;
    r.site = shard.site();
    r.replicate = shard.replicate;
    r.seed = shard.seed;
    r.ok = false;
    r.error = e.what();
    return r;
  }
}

core::CampaignResult run_campaign(const core::CampaignSpec& spec,
                                  const CampaignOptions& options) {
  core::CampaignResult result;
  result.spec = spec;
  result.hardware_threads = std::thread::hardware_concurrency();

  const std::vector<core::ShardSpec> shards = core::enumerate_shards(spec);
  result.runs.resize(shards.size());

  ThreadPool pool(options.jobs);
  result.jobs = pool.threads();

  const auto wall_start = std::chrono::steady_clock::now();
  // Callback invocations are serialized under one mutex (the contract
  // CampaignOptions documents): hooks from different pool threads never
  // interleave, so CLI progress printing and test collectors need no
  // locking of their own. Shard execution itself runs outside the lock.
  std::mutex callback_mutex;
  pool.parallel_for(shards.size(), [&](std::size_t i) {
    // Each shard writes only its own pre-assigned slot; the result vector
    // needs no lock and ends up in shard order regardless of scheduling.
    if (options.on_shard_start) {
      const std::lock_guard<std::mutex> lock(callback_mutex);
      options.on_shard_start(shards[i]);
    }
    result.runs[i] = run_shard_captured(spec, shards[i]);
    if (options.on_result) {
      const std::lock_guard<std::mutex> lock(callback_mutex);
      options.on_result(result.runs[i]);
    }
  });
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  result.wall_seconds = wall.count();
  result.steals = pool.steals();
  return result;
}

}  // namespace f2t::exec
