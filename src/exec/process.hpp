#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.hpp"

namespace f2t::exec {

/// Process-level campaign execution (`f2tsim campaign --workers N`).
///
/// The parent writes a checkpoint manifest plus a canonical spec echo
/// into a state directory, forks N workers over contiguous shard
/// ranges, and reduces their per-worker JSONL streams back into the
/// ordinary core::CampaignResult. Workers re-enumerate the shard list
/// from the spec (shards are a pure function of it), run their
/// half-open ranges serially and flush one self-contained JSONL record
/// per completed shard — so a SIGKILL loses at most the shard in
/// flight, and --resume re-runs exactly the missing indices.
///
/// State-directory layout (default `<out>.state/`):
///   manifest.json    core::CheckpointManifest (spec echo + geometry)
///   spec.json        canonical spec echo, what exec-mode workers load
///   worker-<i>.jsonl one stream per worker, appended on resume
///
/// Determinism contract: records carry exact values (doubles at 17
/// significant digits, seeds as strings), the reducer re-orders them by
/// shard index, and the deterministic portion of the artifact is
/// byte-identical to an in-process run for any worker count — including
/// a run that was killed and resumed.
struct ProcessCampaignOptions {
  int workers = 2;          ///< forked worker processes (>= 1)
  bool resume = false;      ///< continue from an existing state dir
  std::string state_dir;    ///< checkpoint/stream directory (required)
  /// Binary to exec for workers (e.g. /proc/self/exe). Empty = fork-only
  /// mode: the child calls run_campaign_worker in-process and _exit()s —
  /// what tests and benchmarks use, since they do not know the CLI
  /// binary's path. Non-empty = fork+exec `<exe> campaign-worker
  /// --spec <state>/spec.json --shards a:b --out <state>/worker-<i>.jsonl`
  /// so worker processes are visible (and killable) by command line.
  std::string exe;
  /// Optional progress hook, invoked from the reducer (parent process,
  /// single thread) as each streamed record arrives — arrival order,
  /// not shard order.
  std::function<void(const core::ShardResult&)> on_record;
};

/// Worker body: runs every shard of `ranges` (half-open, ascending)
/// serially and streams one JSONL record per shard to `out`, flushing
/// after each. Returns the number of shards run. Exec-mode workers call
/// this via the hidden `campaign-worker` subcommand; fork-only mode
/// calls it directly in the child.
int run_campaign_worker(const core::CampaignSpec& spec,
                        const std::vector<std::pair<int, int>>& ranges,
                        std::ostream& out);

/// Forks `options.workers` workers over the spec's shards, streams and
/// reduces their records, and returns the assembled CampaignResult
/// (runs in shard order; jobs = workers; steals = 0).
///
/// Fresh run: the state dir must not already hold a manifest (stale
/// state must be an explicit error, not silently overwritten). Resume:
/// the manifest must exist and its embedded spec echo must match
/// byte-for-byte; completed records are loaded from the streams (a torn
/// trailing line from a killed worker is detected and truncated away)
/// and only the missing shard indices are re-run.
///
/// Throws std::runtime_error when a worker dies abnormally (after
/// draining its stream — completed shards stay checkpointed) or when
/// records are missing after all workers exit; the message suggests
/// --resume.
core::CampaignResult run_campaign_processes(
    const core::CampaignSpec& spec, const ProcessCampaignOptions& options);

}  // namespace f2t::exec
