#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace f2t::exec {

/// Small work-stealing thread pool for embarrassingly parallel index
/// spaces. Built for the campaign engine: every task is an independent
/// simulation whose result slot is pre-assigned, so the pool only has to
/// distribute indices — determinism is the caller's problem and is solved
/// upstream by per-shard RNG streams, not by scheduling.
///
/// Work distribution: `parallel_for(n, fn)` deals the indices round-robin
/// across per-worker deques; each worker drains its own deque from the
/// front and, when empty, steals from the back of a victim's deque.
/// Stealing from the opposite end keeps contention off the hot path and
/// moves the largest remaining chunks between workers.
///
/// With `threads <= 1` (or n <= 1) the loop runs inline on the calling
/// thread — no worker threads are ever created, which keeps the
/// single-job campaign path trivially deterministic to debug and lets the
/// same binary run under strict sanitizers without thread noise.
class ThreadPool {
 public:
  /// threads <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, n) across the pool and returns when all
  /// calls finished. The first exception thrown by any fn is rethrown on
  /// the calling thread after every worker has stopped; remaining queued
  /// indices are abandoned once an exception is recorded.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  int threads() const { return threads_; }

  /// Number of cross-worker steals in the last parallel_for — exported in
  /// the campaign profile as a load-balance diagnostic.
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::size_t> items;
  };

  /// Pops work for `self`: own queue front first, then steal from the
  /// back of the other queues. Returns false when no work is left
  /// anywhere (remaining_ == 0 is the termination signal, so a false here
  /// during draining means "try again", handled by the caller's loop).
  bool try_pop(std::size_t self, std::size_t& out);

  void worker_loop(std::size_t self,
                   const std::function<void(std::size_t)>& fn);

  int threads_;
  std::vector<WorkerQueue> queues_;
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;
  std::mutex error_mu_;
};

}  // namespace f2t::exec
