#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sim/time.hpp"

namespace f2t::sim {

/// Deterministic random source used everywhere in the simulator.
///
/// A thin wrapper over mt19937_64 with the distributions the reproduction
/// needs. Log-normal samplers are parameterised by *median* and sigma —
/// the form used by the DCN measurement studies the paper cites ([1], [25])
/// — rather than by the underlying normal's mean, which is error-prone.
class Random {
 public:
  explicit Random(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Log-normal sample with the given median (= exp(mu)) and sigma.
  double lognormal_median(double median, double sigma);

  /// Picks a uniformly random index in [0, n).
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle (deterministic given the seed).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[static_cast<std::size_t>(
                              uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }
  }

  /// Derives an independent child RNG; used to give each traffic source
  /// its own stream so adding one source does not perturb the others.
  /// Consumes parent draws: the child depends on how much the parent has
  /// been used. For order-independent streams use split().
  Random fork();

  /// Derives the `stream_id`-th independent child stream from this RNG's
  /// *construction seed* — a stateless SplitMix64 jump, so the result
  /// depends only on (seed, stream_id), never on how much this engine has
  /// been consumed or on call order. This is what makes sharded campaign
  /// results bitwise independent of thread count and schedule: shard i
  /// always simulates with split(i) of the campaign's root seed.
  Random split(std::uint64_t stream_id) const {
    return Random(derive_stream_seed(seed_, stream_id));
  }

  /// The seed-level form of split() for call sites that only carry the
  /// root seed (campaign sharders, config plumbing).
  static std::uint64_t derive_stream_seed(std::uint64_t root_seed,
                                          std::uint64_t stream_id);

  /// The construction seed (identifies the stream, not its position).
  std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// The DCN-measurement draw shape shared by every log-normal event
/// process in the simulator (background flow interarrivals, random
/// failure interarrivals and durations): sample a log-normal by median
/// and sigma, convert seconds to simulation time, and clamp below by a
/// process-specific floor so a deep-left-tail draw cannot collapse the
/// event loop into a zero-delay spin. One draw from `rng`, bit-identical
/// to calling rng.lognormal_median directly (pinned by test_stats.cpp).
Time lognormal_interval(Random& rng, double median_s, double sigma,
                        Time floor);

/// Companion size draw: log-normal bytes clamped into [lo, hi] — the
/// body/tail clamp background traffic applies to flow sizes. Also one
/// draw, identical to the direct call.
std::uint64_t lognormal_bytes(Random& rng, double median_bytes, double sigma,
                              std::uint64_t lo, std::uint64_t hi);

}  // namespace f2t::sim
