#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace f2t::sim {

EventId Scheduler::schedule_at(Time at, std::function<void()> action) {
  if (at < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time in the past");
  }
  if (!action) {
    throw std::invalid_argument("Scheduler::schedule_at: empty action");
  }
  const EventId id = next_id_++;
  queue_.push(EventKey{at, id});
  actions_.emplace(id, std::move(action));
  ++live_count_;
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  // Only ids with a stored action can be cancelled. An id that has
  // already fired (or was cancelled and reaped) must be a true no-op:
  // remembering it would both leak a tombstone in `cancelled_` and
  // decrement `live_count_` for an event that no longer counts, making
  // has_pending() lie about other, still-live events.
  const auto it = actions_.find(id);
  if (it == actions_.end()) return;
  actions_.erase(it);
  cancelled_.insert(id);
  --live_count_;
}

void Scheduler::drop_cancelled_head() {
  while (const EventKey* head = queue_.peek()) {
    const auto it = cancelled_.find(head->id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

Time Scheduler::next_event_time() {
  drop_cancelled_head();
  const EventKey* head = queue_.peek();
  return head == nullptr ? kNever : head->at;
}

bool Scheduler::step(Time until) {
  drop_cancelled_head();
  const EventKey* head = queue_.peek();
  if (head == nullptr || head->at > until) return false;
  const EventKey ev = queue_.pop();
  // Move the action out of the side map before running it; the action may
  // schedule or cancel (including a self-cancel, which is then a no-op).
  auto node = actions_.extract(ev.id);
  --live_count_;
  now_ = ev.at;
  ++executed_;
  node.mapped()();
  return true;
}

std::size_t Scheduler::run(Time until) {
  std::size_t n = 0;
  while (step(until)) ++n;
  if (until != kNever && now_ < until) {
    now_ = until;
    queue_.advance(until);
  }
  return n;
}

}  // namespace f2t::sim
