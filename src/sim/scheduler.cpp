#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace f2t::sim {

EventId Scheduler::schedule_at(Time at, std::function<void()> action) {
  if (at < now_) {
    throw std::invalid_argument("Scheduler::schedule_at: time in the past");
  }
  if (!action) {
    throw std::invalid_argument("Scheduler::schedule_at: empty action");
  }
  const EventId id = next_id_++;
  queue_.push(Event{at, id, std::move(action)});
  ++live_count_;
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  // Only remember ids that could still be in the heap.
  if (id >= next_id_) return;
  if (cancelled_.insert(id).second && live_count_ > 0) {
    --live_count_;
  }
}

void Scheduler::drop_cancelled_head() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

Time Scheduler::next_event_time() {
  drop_cancelled_head();
  return queue_.empty() ? kNever : queue_.top().at;
}

bool Scheduler::step(Time until) {
  drop_cancelled_head();
  if (queue_.empty() || queue_.top().at > until) return false;
  // Move the action out before popping; the action may schedule/cancel.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  --live_count_;
  now_ = ev.at;
  ++executed_;
  ev.action();
  return true;
}

std::size_t Scheduler::run(Time until) {
  std::size_t n = 0;
  while (step(until)) ++n;
  if (until != kNever && now_ < until) now_ = until;
  return n;
}

}  // namespace f2t::sim
