#pragma once

#include <cstdint>
#include <string>

namespace f2t::sim {

/// Simulated time in integer nanoseconds since simulation start.
///
/// A plain strong-ish alias is used instead of std::chrono so that event
/// timestamps are trivially comparable, hashable and printable; helper
/// constructors below keep call sites readable (`millis(60)` etc.).
using Time = std::int64_t;

inline constexpr Time kNever = INT64_MAX;

constexpr Time nanos(std::int64_t n) { return n; }
constexpr Time micros(std::int64_t u) { return u * 1'000; }
constexpr Time millis(std::int64_t m) { return m * 1'000'000; }
constexpr Time seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Fractional-second constructor for configuration code; rounds to ns.
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }
constexpr double to_millis(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_micros(Time t) { return static_cast<double>(t) / 1e3; }

/// Renders a time as a human-readable string with an adaptive unit,
/// e.g. "272.847ms" or "60us". Used by logs and benchmark tables.
std::string format_time(Time t);

}  // namespace f2t::sim
