#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "sim/event.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace f2t::sim {

/// Deterministic discrete-event scheduler.
///
/// A calendar (bucket) queue of (time, id) keys — see sim/event_queue.hpp
/// — guarantees that two runs with the same inputs execute events in the
/// same order: pop order is strictly (time, id)-minimal, FIFO among
/// same-timestamp events, independent of the calendar's bucket geometry.
/// The actions themselves live in a side map keyed by EventId, so
/// executing an event moves its action out of the map with no queue
/// surgery (and no const_cast of the queue head — keys are immutable
/// while queued). Cancellation is lazy: cancelled ids are remembered and
/// their keys skipped when they surface, which keeps schedule/cancel
/// O(1) amortized.
class Scheduler {
 public:
  /// Current simulated time. Advances only while running events.
  Time now() const { return now_; }

  /// Schedules `action` to run at absolute time `at` (>= now()).
  /// Returns an id usable with cancel().
  EventId schedule_at(Time at, std::function<void()> action);

  /// Schedules `action` to run `delay` after the current time.
  EventId schedule_after(Time delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancels a pending event. Cancelling an already-fired or invalid id
  /// is a *true* no-op (the common pattern for one-shot timers): actions
  /// are tracked while scheduled, so a late cancel neither perturbs the
  /// live-event accounting nor leaves tombstones behind.
  void cancel(EventId id);

  /// Runs events until the queue drains or the optional horizon is hit.
  /// Returns the number of events executed.
  std::size_t run(Time until = kNever);

  /// Runs exactly one event if any is pending before `until`.
  bool step(Time until = kNever);

  /// True if any non-cancelled event is pending.
  bool has_pending() const { return live_count_ > 0; }

  /// Time of the next live event, or kNever.
  Time next_event_time();

  std::size_t executed_count() const { return executed_; }

  /// The calendar queue's self-profile (geometry churn, pile-up depth);
  /// see sim::CalendarStats. Always maintained, read on demand.
  CalendarStats queue_stats() const { return queue_.stats(); }

  /// Number of cancelled ids still awaiting lazy removal from the heap;
  /// bounded by the heap size (tests assert no tombstone growth).
  std::size_t cancelled_backlog() const { return cancelled_.size(); }

  /// True if `id` is scheduled and not cancelled.
  bool is_pending(EventId id) const { return actions_.contains(id); }

 private:
  void drop_cancelled_head();

  CalendarQueue queue_;
  std::unordered_map<EventId, std::function<void()>> actions_;
  std::unordered_set<EventId> cancelled_;
  Time now_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace f2t::sim
