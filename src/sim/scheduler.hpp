#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace f2t::sim {

/// Deterministic discrete-event scheduler.
///
/// A binary min-heap ordered by (time, sequence) guarantees that two runs
/// with the same inputs execute events in the same order. Cancellation is
/// lazy: cancelled ids are remembered and skipped when popped, which keeps
/// schedule/cancel O(log n) without heap surgery.
class Scheduler {
 public:
  /// Current simulated time. Advances only while running events.
  Time now() const { return now_; }

  /// Schedules `action` to run at absolute time `at` (>= now()).
  /// Returns an id usable with cancel().
  EventId schedule_at(Time at, std::function<void()> action);

  /// Schedules `action` to run `delay` after the current time.
  EventId schedule_after(Time delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancels a pending event. Cancelling an already-fired or invalid id
  /// is a *true* no-op (the common pattern for one-shot timers): ids are
  /// tracked while in the heap, so a late cancel neither perturbs the
  /// live-event accounting nor leaves tombstones behind.
  void cancel(EventId id);

  /// Runs events until the queue drains or the optional horizon is hit.
  /// Returns the number of events executed.
  std::size_t run(Time until = kNever);

  /// Runs exactly one event if any is pending before `until`.
  bool step(Time until = kNever);

  /// True if any non-cancelled event is pending.
  bool has_pending() const { return live_count_ > 0; }

  /// Time of the next live event, or kNever.
  Time next_event_time();

  std::size_t executed_count() const { return executed_; }

  /// Number of cancelled ids still awaiting lazy removal from the heap;
  /// bounded by the heap size (tests assert no tombstone growth).
  std::size_t cancelled_backlog() const { return cancelled_.size(); }

  /// True if `id` is scheduled and not cancelled.
  bool is_pending(EventId id) const {
    return in_heap_.contains(id) && !cancelled_.contains(id);
  }

 private:
  void drop_cancelled_head();

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> in_heap_;
  Time now_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace f2t::sim
