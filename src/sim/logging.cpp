#include "sim/logging.hpp"

#include <cinttypes>
#include <cstdio>

namespace f2t::sim {

std::string format_time(Time t) {
  char buf[64];
  if (t == kNever) return "never";
  const bool neg = t < 0;
  const std::int64_t v = neg ? -t : t;
  const char* sign = neg ? "-" : "";
  if (v < 10'000) {
    std::snprintf(buf, sizeof(buf), "%s%" PRId64 "ns", sign, v);
  } else if (v < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%s%.4gus", sign, static_cast<double>(v) / 1e3);
  } else if (v < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%s%.4gms", sign, static_cast<double>(v) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.4gs", sign, static_cast<double>(v) / 1e9);
  }
  return buf;
}

Logger::Logger() {
  sink_ = [](LogLevel level, Time now, const std::string& message) {
    std::fprintf(stderr, "[%s %s] %s\n", level_name(level),
                 format_time(now).c_str(), message.c_str());
  };
}

void Logger::set_sink(Sink sink) {
  if (sink) sink_ = std::move(sink);
}

void Logger::log(LogLevel level, Time now, const std::string& message) {
  if (enabled(level)) sink_(level, now, message);
}

std::optional<LogLevel> Logger::parse_level(std::string_view name) {
  std::string lowered(name);
  for (char& c : lowered) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lowered == "trace") return LogLevel::kTrace;
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off") return LogLevel::kOff;
  return std::nullopt;
}

const char* Logger::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace f2t::sim
