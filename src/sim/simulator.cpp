#include "sim/simulator.hpp"

// Simulator is header-only glue; this translation unit exists so the
// target has a stable home for future out-of-line additions.
namespace f2t::sim {}
