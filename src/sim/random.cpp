#include "sim/random.hpp"

#include <cmath>
#include <stdexcept>

namespace f2t::sim {

std::int64_t Random::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Random::uniform_real(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("uniform_real: lo > hi");
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

bool Random::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Random::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential: mean <= 0");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Random::lognormal_median(double median, double sigma) {
  if (median <= 0.0) throw std::invalid_argument("lognormal: median <= 0");
  if (sigma < 0.0) throw std::invalid_argument("lognormal: sigma < 0");
  std::lognormal_distribution<double> d(std::log(median), sigma);
  return d(engine_);
}

std::size_t Random::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("index: empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Random Random::fork() {
  // Consume two draws to decorrelate the child from subsequent parent use.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Random(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

Time lognormal_interval(Random& rng, double median_s, double sigma,
                        Time floor) {
  const double gap_s = rng.lognormal_median(median_s, sigma);
  return std::max<Time>(from_seconds(gap_s), floor);
}

std::uint64_t lognormal_bytes(Random& rng, double median_bytes, double sigma,
                              std::uint64_t lo, std::uint64_t hi) {
  const double bytes = rng.lognormal_median(median_bytes, sigma);
  if (!(bytes >= static_cast<double>(lo))) return lo;  // also catches NaN
  if (bytes >= static_cast<double>(hi)) return hi;
  return static_cast<std::uint64_t>(bytes);
}

std::uint64_t Random::derive_stream_seed(std::uint64_t root_seed,
                                         std::uint64_t stream_id) {
  // SplitMix64 with random access: the stream_id-th state is root +
  // (stream_id + 1) * gamma, finalized by the SplitMix64 mixer. Two
  // finalizer rounds keep adjacent stream ids far apart even for small,
  // structured roots (seed 1, 2, ...), which is exactly the campaign use.
  std::uint64_t x = root_seed + (stream_id + 1) * 0x9e3779b97f4a7c15ULL;
  for (int round = 0; round < 2; ++round) {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
  }
  return x;
}

}  // namespace f2t::sim
