#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace f2t::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Minimal leveled logger with an injectable sink.
///
/// The simulator owns one Logger; components hold a reference. Tests and
/// benches either silence it (default threshold kWarn) or redirect the sink
/// to capture diagnostics. No global state: two simulations in one process
/// do not interfere.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, Time, const std::string&)>;

  Logger();

  void set_threshold(LogLevel level) { threshold_ = level; }
  LogLevel threshold() const { return threshold_; }
  void set_sink(Sink sink);
  bool enabled(LogLevel level) const { return level >= threshold_; }

  void log(LogLevel level, Time now, const std::string& message);

  static const char* level_name(LogLevel level);

  /// Inverse of level_name for CLI flags: accepts the lowercase names
  /// "trace", "debug", "info", "warn", "error", "off" (case-insensitive).
  /// Returns nullopt for anything else.
  static std::optional<LogLevel> parse_level(std::string_view name);

 private:
  LogLevel threshold_ = LogLevel::kWarn;
  Sink sink_;
};

}  // namespace f2t::sim

/// Log with lazy message construction: the stream expression is evaluated
/// only if the level is enabled.
#define F2T_LOG(logger, level, now, expr)                     \
  do {                                                        \
    if ((logger).enabled(level)) {                            \
      std::ostringstream f2t_log_os_;                         \
      f2t_log_os_ << expr;                                    \
      (logger).log((level), (now), f2t_log_os_.str());        \
    }                                                         \
  } while (0)
