#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace f2t::sim {

/// Calendar-queue self-profile: geometry churn and pile-up depth. All
/// counters are cumulative over the queue's lifetime and cost O(1) to
/// maintain (a compare on push, an increment at each rebuild call site),
/// so they are always on — the observability layer merely reads them.
struct CalendarStats {
  std::uint64_t grows = 0;      ///< rebuilds that doubled the bucket count
  std::uint64_t shrinks = 0;    ///< rebuilds that halved the bucket count
  std::uint64_t far_jumps = 0;  ///< cursor jumps past an empty calendar year
  std::size_t max_bucket_depth = 0;  ///< worst same-day pile-up seen
  std::size_t bucket_count = 0;      ///< current geometry
  int width_log2 = 0;                ///< current day width (2^w ns)

  std::uint64_t rebuilds() const { return grows + shrinks; }
};

/// Ordering key of a scheduled event. Min-ordering is (at, id): earliest
/// time first, then earliest id — FIFO among same-timestamp events, which
/// is what keeps two runs with the same inputs executing events in the
/// same order. Both queue implementations below order by exactly this
/// key, so they are interchangeable without affecting determinism.
struct EventKey {
  Time at = 0;
  EventId id = kInvalidEventId;

  friend bool operator==(const EventKey& a, const EventKey& b) {
    return a.at == b.at && a.id == b.id;
  }
  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.id < b.id;
  }
  friend bool operator>(const EventKey& a, const EventKey& b) { return b < a; }
};

/// The scheduler's original binary min-heap key queue. Retained verbatim
/// so the calendar queue can be differential-tested against it and so
/// bench_micro keeps an honest schedule/pop baseline to compare against.
class BinaryHeapQueue {
 public:
  void push(EventKey key);

  /// The minimum key, or nullptr when empty.
  const EventKey* peek() const { return heap_.empty() ? nullptr : &heap_[0]; }

  /// Removes and returns the minimum key. Precondition: !empty().
  EventKey pop();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  std::vector<EventKey> heap_;  // min-heap via std::*_heap with greater
};

/// Calendar (bucket) event queue: O(1) amortized push/pop under the
/// event-density regimes a discrete-event network simulation produces.
///
/// Keys hash into `buckets_` by time: bucket index = (at >> shift) & mask,
/// i.e. each bucket covers a window ("day") of 2^shift ns and the calendar
/// wraps every nbuckets days (a "year"). Finding the minimum scans days
/// forward from the cursor; a full rotation without a hit (the next event
/// is over a year away) falls back to a direct scan over bucket fronts and
/// jumps the cursor there. Each bucket is itself a small binary min-heap
/// over (at, id), so adversarial distributions that pile every event into
/// one bucket degrade to exactly the old heap's O(log n) — never worse.
///
/// Pop order is strictly (at, id)-minimal regardless of bucket geometry:
/// the geometry (shift/bucket count, chosen at deterministic resize
/// points) only moves work around, so determinism is by construction.
///
/// Invariant: keys are pushed at times >= the last popped key's time
/// (the scheduler never schedules in the past).
class CalendarQueue {
 public:
  CalendarQueue();

  void push(EventKey key);

  /// The minimum key, or nullptr when empty. Non-const: locates (and
  /// caches) the minimum's bucket and may advance the search cursor.
  const EventKey* peek();

  /// Removes and returns the minimum key. Precondition: !empty().
  EventKey pop();

  /// Hints that no key below `t` will be pushed again (e.g. the horizon
  /// was reached); fast-forwards the search cursor past empty days.
  void advance(Time t) { cursor_ = cursor_ < t ? t : cursor_; }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Introspection for tests and benches.
  std::size_t bucket_count() const { return buckets_.size(); }
  int width_log2() const { return shift_; }

  /// Lifetime self-profile (geometry churn, pile-up depth, far jumps)
  /// plus the current geometry. See CalendarStats.
  CalendarStats stats() const {
    CalendarStats s = stats_;
    s.bucket_count = buckets_.size();
    s.width_log2 = shift_;
    return s;
  }

 private:
  struct Bucket {
    std::vector<EventKey> heap;  // min-heap via std::*_heap with greater
  };

  std::size_t index_of(Time at) const {
    return (static_cast<std::uint64_t>(at) >> shift_) & mask_;
  }
  std::size_t locate_min();
  void rebuild(std::size_t nbuckets);

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;
  int shift_ = 0;
  Time cursor_ = 0;           ///< lower bound on every queued key's time
  std::size_t size_ = 0;
  std::size_t min_bucket_ = 0;
  bool min_valid_ = false;
  CalendarStats stats_;  ///< bucket_count/width_log2 filled by stats()
};

}  // namespace f2t::sim
