#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <functional>

namespace f2t::sim {

void BinaryHeapQueue::push(EventKey key) {
  heap_.push_back(key);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

EventKey BinaryHeapQueue::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  const EventKey key = heap_.back();
  heap_.pop_back();
  return key;
}

namespace {

constexpr std::size_t kMinBuckets = 16;
constexpr int kMaxShift = 40;  // widest day: ~18 minutes of simulated time

}  // namespace

CalendarQueue::CalendarQueue() { rebuild(kMinBuckets); }

void CalendarQueue::push(EventKey key) {
  Bucket& bucket = buckets_[index_of(key.at)];
  bucket.heap.push_back(key);
  std::push_heap(bucket.heap.begin(), bucket.heap.end(), std::greater<>{});
  ++size_;
  if (bucket.heap.size() > stats_.max_bucket_depth) {
    stats_.max_bucket_depth = bucket.heap.size();
  }
  if (min_valid_) {
    // A key below the cached minimum is the new minimum and, having just
    // been sifted up, sits at the front of its own bucket.
    const EventKey& cached = buckets_[min_bucket_].heap.front();
    if (key < cached) min_bucket_ = index_of(key.at);
  }
  if (size_ > 2 * buckets_.size()) {
    ++stats_.grows;
    rebuild(2 * buckets_.size());
  }
}

const EventKey* CalendarQueue::peek() {
  if (size_ == 0) return nullptr;
  if (!min_valid_) {
    min_bucket_ = locate_min();
    min_valid_ = true;
  }
  return &buckets_[min_bucket_].heap.front();
}

EventKey CalendarQueue::pop() {
  peek();
  auto& heap = buckets_[min_bucket_].heap;
  std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
  const EventKey key = heap.back();
  heap.pop_back();
  --size_;
  cursor_ = key.at;
  // All keys of one day share a bucket, so if this bucket's new front is
  // still in the popped key's day it is the global minimum — the day walk
  // would stop here anyway. Keeps the cached minimum valid across pops
  // within a busy day (the common case) without a scan.
  min_valid_ =
      !heap.empty() &&
      (static_cast<std::uint64_t>(heap.front().at) >> shift_) ==
          (static_cast<std::uint64_t>(key.at) >> shift_);
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
    ++stats_.shrinks;
    rebuild(buckets_.size() / 2);
  }
  return key;
}

std::size_t CalendarQueue::locate_min() {
  // Walk days forward from the cursor. Every queued key's time is
  // >= cursor_, so a bucket whose front belongs to the scanned day holds
  // that day's minimum — and days are scanned in increasing order, so the
  // first hit is the global minimum.
  const auto day0 = static_cast<std::uint64_t>(cursor_) >> shift_;
  const std::size_t n = buckets_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t day = day0 + i;
    const Bucket& bucket = buckets_[day & mask_];
    if (!bucket.heap.empty() &&
        (static_cast<std::uint64_t>(bucket.heap.front().at) >> shift_) ==
            day) {
      return day & mask_;
    }
  }
  // The next event is more than a calendar year away: scan bucket fronts
  // directly for the global minimum and jump the cursor to it.
  std::size_t best = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (buckets_[i].heap.empty()) continue;
    if (best == n || buckets_[i].heap.front() < buckets_[best].heap.front()) {
      best = i;
    }
  }
  ++stats_.far_jumps;
  cursor_ = buckets_[best].heap.front().at;
  return best;
}

void CalendarQueue::rebuild(std::size_t nbuckets) {
  std::vector<EventKey> keys;
  keys.reserve(size_);
  for (Bucket& bucket : buckets_) {
    keys.insert(keys.end(), bucket.heap.begin(), bucket.heap.end());
  }

  // Day width from the density at the head of the queue (Brown's calendar
  // queue heuristic): the average gap over the ~64 earliest keys, scaled
  // so a day holds a handful of events, rounded to a power of two so the
  // bucket index is a shift-and-mask. Deterministic — it depends only on
  // the queued keys.
  int shift = kMaxShift;
  if (keys.size() >= 2) {
    const std::size_t sample = std::min<std::size_t>(keys.size(), 64);
    std::partial_sort(keys.begin(),
                      keys.begin() + static_cast<std::ptrdiff_t>(sample),
                      keys.end());
    const Time span = keys[sample - 1].at - keys[0].at;
    const auto gap =
        static_cast<std::uint64_t>(span) / (sample - 1);
    // Day width ~4x the average head gap (equivalently bit_width(gap)+1),
    // written overflow-safe for pathological key spans.
    shift = gap == 0 ? 0
                     : std::min(kMaxShift,
                                static_cast<int>(std::bit_width(gap)) + 1);
  }

  buckets_.assign(nbuckets, Bucket{});
  mask_ = nbuckets - 1;
  shift_ = shift;
  min_valid_ = false;
  for (const EventKey& key : keys) {
    buckets_[index_of(key.at)].heap.push_back(key);
  }
  for (Bucket& bucket : buckets_) {
    std::make_heap(bucket.heap.begin(), bucket.heap.end(), std::greater<>{});
  }
}

}  // namespace f2t::sim
