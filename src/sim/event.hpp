#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/time.hpp"

namespace f2t::sim {

/// Identifier of a scheduled event; used to cancel pending events.
/// Ids are unique within one Scheduler and never reused.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

/// A scheduled callback. Events with the same timestamp fire in
/// scheduling order (FIFO), which keeps runs deterministic.
struct Event {
  Time at = 0;
  EventId id = kInvalidEventId;
  std::function<void()> action;

  /// Min-heap ordering: earliest time first, then earliest id.
  friend bool operator>(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.id > b.id;
  }
};

}  // namespace f2t::sim
