#pragma once

#include <cstdint>

namespace f2t::sim {

/// Identifier of a scheduled event; used to cancel pending events.
/// Ids are unique within one Scheduler and never reused.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

}  // namespace f2t::sim
