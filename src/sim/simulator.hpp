#pragma once

#include <cstdint>

#include "sim/logging.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace f2t::sim {

/// Bundle of the per-run simulation services: clock+event queue, RNG and
/// logger. Every network object holds a Simulator& — there is no global
/// simulation state, so independent simulations can coexist in one process
/// (the test suite relies on this heavily).
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : random_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Scheduler& scheduler() { return scheduler_; }
  Random& random() { return random_; }
  Logger& logger() { return logger_; }

  Time now() const { return scheduler_.now(); }

  EventId at(Time when, std::function<void()> action) {
    return scheduler_.schedule_at(when, std::move(action));
  }
  EventId after(Time delay, std::function<void()> action) {
    return scheduler_.schedule_after(delay, std::move(action));
  }
  void cancel(EventId id) { scheduler_.cancel(id); }

  /// Runs until the horizon (or queue exhaustion with the default).
  std::size_t run(Time until = kNever) { return scheduler_.run(until); }

 private:
  Scheduler scheduler_;
  Random random_;
  Logger logger_;
};

}  // namespace f2t::sim
