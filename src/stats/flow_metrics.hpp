#pragma once

#include <optional>
#include <vector>

#include "sim/time.hpp"
#include "stats/timeseries.hpp"

namespace f2t::stats {

/// The failure-induced connectivity gap in a constant-rate packet stream,
/// measured exactly as the paper does (Table III): the interval between
/// the last packet that arrived before the outage and the first packet
/// that arrived after it.
struct ConnectivityLoss {
  sim::Time gap_start = 0;  ///< arrival time of the last pre-gap packet
  sim::Time gap_end = 0;    ///< arrival time of the first post-gap packet

  sim::Time duration() const { return gap_end - gap_start; }
};

/// Finds the first inter-arrival gap larger than `min_gap` that ends after
/// `fail_time`, in a sorted arrival-time sequence. Returns nullopt when no
/// such gap exists (i.e. the stream never stalled — what F²Tree achieves
/// once detection is instantaneous).
std::optional<ConnectivityLoss> find_connectivity_loss(
    const std::vector<sim::Time>& arrivals, sim::Time fail_time,
    sim::Time min_gap = sim::millis(5));

/// Number of consecutive sequence numbers missing from a UDP stream:
/// sent - received, assuming the sender counted `sent` packets.
std::uint64_t packets_lost(std::uint64_t sent, std::uint64_t received);

/// Duration of TCP throughput collapse per the paper's definition: the
/// total width of bins (after `fail_time`) whose rate is below
/// `fraction` of the mean rate measured over [baseline_from, fail_time).
/// Counting stops at the first healthy bin after the collapse run ends.
sim::Time throughput_collapse_duration(const ThroughputMeter& meter,
                                       sim::Time baseline_from,
                                       sim::Time fail_time, sim::Time until,
                                       double fraction = 0.5);

}  // namespace f2t::stats
