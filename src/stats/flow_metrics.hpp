#pragma once

#include <optional>
#include <vector>

#include "sim/time.hpp"
#include "stats/timeseries.hpp"

namespace f2t::stats {

/// The failure-induced connectivity gap in a constant-rate packet stream,
/// measured exactly as the paper does (Table III): the interval between
/// the last packet that arrived before the outage and the first packet
/// that arrived after it.
struct ConnectivityLoss {
  sim::Time gap_start = 0;  ///< arrival time of the last pre-gap packet
  sim::Time gap_end = 0;    ///< arrival time of the first post-gap packet

  sim::Time duration() const { return gap_end - gap_start; }
};

/// Finds the first inter-arrival gap larger than `min_gap` that ends after
/// `fail_time`, in a sorted arrival-time sequence. Returns nullopt when no
/// such gap exists (i.e. the stream never stalled — what F²Tree achieves
/// once detection is instantaneous).
std::optional<ConnectivityLoss> find_connectivity_loss(
    const std::vector<sim::Time>& arrivals, sim::Time fail_time,
    sim::Time min_gap = sim::millis(5));

/// Number of consecutive sequence numbers missing from a UDP stream:
/// sent - received, assuming the sender counted `sent` packets.
std::uint64_t packets_lost(std::uint64_t sent, std::uint64_t received);

/// Duration of TCP throughput collapse per the paper's definition: the
/// total width of bins (after `fail_time`) whose rate is below
/// `fraction` of the mean rate measured over [baseline_from, fail_time).
/// Counting stops at the first healthy bin after the collapse run ends.
sim::Time throughput_collapse_duration(const ThroughputMeter& meter,
                                       sim::Time baseline_from,
                                       sim::Time fail_time, sim::Time until,
                                       double fraction = 0.5);

/// One application flow as the SLO machinery sees it: when it started,
/// when its last byte was delivered (kNever = still open at the horizon),
/// how big it was, the FCT an idle network would have given it, and its
/// deadline (0 = best-effort). Workload generators emit these; campaign
/// shards fold them into an SloSummary.
struct FlowSample {
  sim::Time start = 0;
  sim::Time finish = sim::kNever;
  std::uint64_t bytes = 0;
  sim::Time ideal = 0;
  sim::Time deadline = 0;  ///< relative to start; 0 = none
};

/// Tail-latency SLO rollup over a flow population — the "what did users
/// feel" counterpart of the paper's connectivity-loss window. FCT
/// percentiles go through the shared nearest_rank_sorted so campaign
/// artifacts and telemetry rollups bucket identically; slowdown uses the
/// fractional-rank path (it is a derived ratio, not an artifact bucket).
struct SloSummary {
  std::size_t flows = 0;      ///< samples considered
  std::size_t completed = 0;  ///< finished before the horizon
  double fct_ms_p50 = 0;      ///< completed flows only
  double fct_ms_p99 = 0;
  double fct_ms_p999 = 0;
  double fct_ms_max = 0;
  double slowdown_p50 = 0;  ///< FCT / ideal FCT, completed flows with ideal
  double slowdown_p99 = 0;
  /// Deadline-miss fraction among deadline-bearing flows *started* inside
  /// vs outside [window_start, window_end) — the failure window. An
  /// unfinished flow whose deadline passed before the horizon counts as
  /// missed; one whose deadline is still open at the horizon is excluded.
  std::size_t deadline_flows_in_window = 0;
  std::size_t deadline_flows_out_window = 0;
  double miss_in_window = 0;
  double miss_out_window = 0;
};

/// Folds flow samples into the SLO rollup. `window_start`/`window_end`
/// bound the failure window for the deadline-miss split (pass 0/0 for
/// no window: everything counts as outside); `horizon` is the simulation
/// end used to age unfinished flows against their deadlines.
SloSummary compute_slo(const std::vector<FlowSample>& flows,
                       sim::Time window_start, sim::Time window_end,
                       sim::Time horizon);

}  // namespace f2t::stats
