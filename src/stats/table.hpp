#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace f2t::stats {

/// Plain ASCII table printer used by the benchmark harnesses to emit the
/// paper's tables and figure series in a stable, diff-friendly format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  /// Formats numbers for cells.
  static std::string num(double value, int precision = 2);
  static std::string percent(double fraction, int precision = 2);

  void print(std::ostream& os) const;
  std::string str() const;

  /// Machine-readable rendering (quoted CSV) for piping into plotters.
  void print_csv(std::ostream& os) const;
  std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section heading for benchmark output.
void print_heading(std::ostream& os, const std::string& title);

}  // namespace f2t::stats
