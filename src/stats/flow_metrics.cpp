#include "stats/flow_metrics.hpp"

#include <stdexcept>

namespace f2t::stats {

std::optional<ConnectivityLoss> find_connectivity_loss(
    const std::vector<sim::Time>& arrivals, sim::Time fail_time,
    sim::Time min_gap) {
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] < arrivals[i - 1]) {
      throw std::invalid_argument("find_connectivity_loss: unsorted arrivals");
    }
    const sim::Time gap = arrivals[i] - arrivals[i - 1];
    if (gap >= min_gap && arrivals[i] > fail_time) {
      return ConnectivityLoss{arrivals[i - 1], arrivals[i]};
    }
  }
  return std::nullopt;
}

std::uint64_t packets_lost(std::uint64_t sent, std::uint64_t received) {
  return sent >= received ? sent - received : 0;
}

sim::Time throughput_collapse_duration(const ThroughputMeter& meter,
                                       sim::Time baseline_from,
                                       sim::Time fail_time, sim::Time until,
                                       double fraction) {
  const double baseline = meter.mean_mbps(baseline_from, fail_time);
  if (baseline <= 0.0) return 0;
  const double threshold = baseline * fraction;
  sim::Time collapsed = 0;
  bool seen_collapse = false;
  for (const auto& bin : meter.series(fail_time, until)) {
    if (bin.mbps < threshold) {
      collapsed += meter.bin_width();
      seen_collapse = true;
    } else if (seen_collapse) {
      break;  // recovery: first healthy bin after the collapse run
    }
  }
  return collapsed;
}

}  // namespace f2t::stats
