#include "stats/flow_metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/percentile.hpp"

namespace f2t::stats {

std::optional<ConnectivityLoss> find_connectivity_loss(
    const std::vector<sim::Time>& arrivals, sim::Time fail_time,
    sim::Time min_gap) {
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] < arrivals[i - 1]) {
      throw std::invalid_argument("find_connectivity_loss: unsorted arrivals");
    }
    const sim::Time gap = arrivals[i] - arrivals[i - 1];
    if (gap >= min_gap && arrivals[i] > fail_time) {
      return ConnectivityLoss{arrivals[i - 1], arrivals[i]};
    }
  }
  return std::nullopt;
}

std::uint64_t packets_lost(std::uint64_t sent, std::uint64_t received) {
  return sent >= received ? sent - received : 0;
}

sim::Time throughput_collapse_duration(const ThroughputMeter& meter,
                                       sim::Time baseline_from,
                                       sim::Time fail_time, sim::Time until,
                                       double fraction) {
  const double baseline = meter.mean_mbps(baseline_from, fail_time);
  if (baseline <= 0.0) return 0;
  const double threshold = baseline * fraction;
  sim::Time collapsed = 0;
  bool seen_collapse = false;
  for (const auto& bin : meter.series(fail_time, until)) {
    if (bin.mbps < threshold) {
      collapsed += meter.bin_width();
      seen_collapse = true;
    } else if (seen_collapse) {
      break;  // recovery: first healthy bin after the collapse run
    }
  }
  return collapsed;
}

SloSummary compute_slo(const std::vector<FlowSample>& flows,
                       sim::Time window_start, sim::Time window_end,
                       sim::Time horizon) {
  SloSummary out;
  out.flows = flows.size();

  std::vector<double> fct_ms;
  std::vector<double> slowdown;
  std::size_t missed_in = 0;
  std::size_t missed_out = 0;
  for (const FlowSample& f : flows) {
    const bool completed = f.finish != sim::kNever;
    if (completed) {
      ++out.completed;
      const sim::Time fct = f.finish - f.start;
      fct_ms.push_back(sim::to_seconds(fct) * 1e3);
      if (f.ideal > 0) {
        slowdown.push_back(static_cast<double>(fct) /
                           static_cast<double>(f.ideal));
      }
    }
    if (f.deadline > 0) {
      // Missed iff delivery did not beat the deadline; an open flow whose
      // deadline has not yet expired at the horizon proves nothing and is
      // excluded rather than counted either way.
      bool missed;
      if (completed) {
        missed = f.finish - f.start > f.deadline;
      } else if (horizon - f.start > f.deadline) {
        missed = true;
      } else {
        continue;
      }
      const bool in_window = f.start >= window_start && f.start < window_end;
      if (in_window) {
        ++out.deadline_flows_in_window;
        if (missed) ++missed_in;
      } else {
        ++out.deadline_flows_out_window;
        if (missed) ++missed_out;
      }
    }
  }

  std::sort(fct_ms.begin(), fct_ms.end());
  std::sort(slowdown.begin(), slowdown.end());
  out.fct_ms_p50 = nearest_rank_sorted(fct_ms, 0.50);
  out.fct_ms_p99 = nearest_rank_sorted(fct_ms, 0.99);
  out.fct_ms_p999 = nearest_rank_sorted(fct_ms, 0.999);
  out.fct_ms_max = fct_ms.empty() ? 0 : fct_ms.back();
  out.slowdown_p50 = fractional_rank_sorted(slowdown, 0.50);
  out.slowdown_p99 = fractional_rank_sorted(slowdown, 0.99);
  if (out.deadline_flows_in_window > 0) {
    out.miss_in_window = static_cast<double>(missed_in) /
                         static_cast<double>(out.deadline_flows_in_window);
  }
  if (out.deadline_flows_out_window > 0) {
    out.miss_out_window = static_cast<double>(missed_out) /
                          static_cast<double>(out.deadline_flows_out_window);
  }
  return out;
}

}  // namespace f2t::stats
