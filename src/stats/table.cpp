#include "stats/table.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace f2t::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

namespace {
void print_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c > 0) os << ",";
    // Quote and escape embedded quotes, RFC 4180 style.
    os << '"';
    for (const char ch : cells[c]) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  }
  os << "\n";
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  print_csv_row(os, headers_);
  for (const auto& row : rows_) print_csv_row(os, row);
}

std::string Table::csv() const {
  std::ostringstream os;
  print_csv(os);
  return os.str();
}

void print_heading(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace f2t::stats
