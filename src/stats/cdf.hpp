#pragma once

#include <vector>

namespace f2t::stats {

/// Empirical distribution over double samples: quantiles, tail fractions
/// and CDF points — used for the completion-time CDF of Fig 6(b).
class Cdf {
 public:
  void add(double sample) { samples_.push_back(sample); sorted_ = false; }
  void add_all(const std::vector<double>& samples);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min();
  double max();
  double mean() const;

  /// Quantile q in [0, 1] (nearest-rank).
  double quantile(double q);

  /// Fraction of samples strictly greater than x.
  double fraction_above(double x);
  /// Fraction of samples less than or equal to x.
  double fraction_at_or_below(double x);

  struct Point {
    double value;
    double cumulative;  ///< fraction of samples <= value
  };

  /// CDF restricted to samples > `from`, downsampled to at most
  /// `max_points` points (always keeping the largest sample).
  std::vector<Point> tail_points(double from, std::size_t max_points);

 private:
  void ensure_sorted();

  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace f2t::stats
