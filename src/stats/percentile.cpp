#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace f2t::stats {

double nearest_rank_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(n)));
  rank = std::clamp<std::size_t>(rank, 1, n);
  return sorted[rank - 1];
}

}  // namespace f2t::stats
