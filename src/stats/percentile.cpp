#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace f2t::stats {

double nearest_rank_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto n = sorted.size();
  const double pn = p * static_cast<double>(n);
  // ceil(p * n) with an exactness guard: when the true product is an
  // integer (p999 on n = 1000 samples), the float product may land a few
  // ulps above it and ceil would overshoot by a whole rank. Snap products
  // within 1e-9 of an integer back onto it before taking the ceiling.
  const double nearest = std::nearbyint(pn);
  const double rank_real =
      std::abs(pn - nearest) <= 1e-9 ? nearest : std::ceil(pn);
  auto rank = static_cast<std::size_t>(std::max(rank_real, 0.0));
  rank = std::clamp<std::size_t>(rank, 1, n);
  return sorted[rank - 1];
}

double fractional_rank_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto n = sorted.size();
  if (p <= 0) return sorted.front();
  if (p >= 1) return sorted.back();
  const double h = p * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted.back();
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace f2t::stats
