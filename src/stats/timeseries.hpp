#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace f2t::stats {

/// Accumulates (time, bytes) samples into fixed-width bins and renders a
/// throughput time series — the instrument behind the paper's Fig 2
/// (20 ms bins by default, matching the paper's plotting granularity).
class ThroughputMeter {
 public:
  explicit ThroughputMeter(sim::Time bin_width = sim::millis(20));

  void add(sim::Time at, std::uint64_t bytes);

  struct Bin {
    sim::Time start;       ///< bin start time
    std::uint64_t bytes;   ///< bytes in bin
    double mbps;           ///< average rate over the bin
  };

  /// Series over [from, to): includes empty (zero) bins.
  std::vector<Bin> series(sim::Time from, sim::Time to) const;

  /// Mean rate over [from, to).
  double mean_mbps(sim::Time from, sim::Time to) const;

  std::uint64_t total_bytes() const { return total_; }
  sim::Time bin_width() const { return bin_width_; }

 private:
  std::uint64_t bytes_in(sim::Time from, sim::Time to) const;

  sim::Time bin_width_;
  std::vector<std::uint64_t> bins_;  ///< bin index -> bytes
  std::uint64_t total_ = 0;
};

/// Generic (time, value) series recorder for e2e-delay plots (Fig 5).
class TimeSeries {
 public:
  struct Point {
    sim::Time at;
    double value;
  };

  void add(sim::Time at, double value) { points_.push_back({at, value}); }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Average value of points with at in [from, to); 0 if none.
  double mean(sim::Time from, sim::Time to) const;

  /// Downsamples to at most `max_points` by averaging fixed-width windows;
  /// used when printing series for plots.
  std::vector<Point> downsample(std::size_t max_points) const;

 private:
  std::vector<Point> points_;
};

}  // namespace f2t::stats
