#include "stats/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2t::stats {

ThroughputMeter::ThroughputMeter(sim::Time bin_width) : bin_width_(bin_width) {
  if (bin_width <= 0) {
    throw std::invalid_argument("ThroughputMeter: bin width must be > 0");
  }
}

void ThroughputMeter::add(sim::Time at, std::uint64_t bytes) {
  if (at < 0) throw std::invalid_argument("ThroughputMeter: negative time");
  const std::size_t index = static_cast<std::size_t>(at / bin_width_);
  if (bins_.size() <= index) bins_.resize(index + 1, 0);
  bins_[index] += bytes;
  total_ += bytes;
}

std::vector<ThroughputMeter::Bin> ThroughputMeter::series(sim::Time from,
                                                          sim::Time to) const {
  std::vector<Bin> out;
  if (to <= from) return out;
  const std::size_t first = static_cast<std::size_t>(from / bin_width_);
  const std::size_t last = static_cast<std::size_t>((to - 1) / bin_width_);
  out.reserve(last - first + 1);
  for (std::size_t i = first; i <= last; ++i) {
    const std::uint64_t bytes = i < bins_.size() ? bins_[i] : 0;
    const double mbps = static_cast<double>(bytes) * 8.0 /
                        (sim::to_seconds(bin_width_) * 1e6);
    out.push_back(Bin{static_cast<sim::Time>(i) * bin_width_, bytes, mbps});
  }
  return out;
}

std::uint64_t ThroughputMeter::bytes_in(sim::Time from, sim::Time to) const {
  std::uint64_t sum = 0;
  for (const Bin& bin : series(from, to)) sum += bin.bytes;
  return sum;
}

double ThroughputMeter::mean_mbps(sim::Time from, sim::Time to) const {
  if (to <= from) return 0.0;
  return static_cast<double>(bytes_in(from, to)) * 8.0 /
         (sim::to_seconds(to - from) * 1e6);
}

double TimeSeries::mean(sim::Time from, sim::Time to) const {
  double sum = 0;
  std::size_t n = 0;
  for (const Point& p : points_) {
    if (p.at >= from && p.at < to) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<TimeSeries::Point> TimeSeries::downsample(
    std::size_t max_points) const {
  if (points_.size() <= max_points || max_points == 0) return points_;
  std::vector<Point> out;
  const std::size_t stride =
      (points_.size() + max_points - 1) / max_points;
  for (std::size_t i = 0; i < points_.size(); i += stride) {
    const std::size_t end = std::min(i + stride, points_.size());
    double sum = 0;
    for (std::size_t j = i; j < end; ++j) sum += points_[j].value;
    out.push_back(Point{points_[i].at,
                        sum / static_cast<double>(end - i)});
  }
  return out;
}

}  // namespace f2t::stats
