#pragma once

#include <vector>

namespace f2t::stats {

/// Nearest-rank percentile over an already-sorted (ascending) sample:
/// the smallest element x such that at least ceil(p * n) samples are
/// <= x. The single definition shared by every artifact writer — the
/// telemetry rollups (obs::SamplerReport), the campaign aggregates
/// (core::aggregate_runs) and the flow SLO summaries
/// (stats::compute_slo) must bucket identically or cross-artifact
/// comparisons lie.
///
/// The rank is computed on an integer-scaled grid, so thousandth-grade
/// percentiles (p999 = 0.999) are exact: ceil(0.999 * 1000) is evaluated
/// without the float-product drift that can push an exact rank boundary
/// to the neighbouring sample.
///
/// Conventions (pinned by tests/test_stats.cpp):
///  - empty sample -> 0;
///  - p <= 0 -> the minimum (rank clamps up to 1);
///  - p >= 1 -> the maximum (rank clamps down to n).
double nearest_rank_sorted(const std::vector<double>& sorted, double p);

/// Fractional-rank (linearly interpolated) percentile over a sorted
/// sample — Hyndman & Fan type 7, the spreadsheet/numpy default: the
/// quantile sits at continuous position h = (n - 1) * p and interpolates
/// between the two neighbouring order statistics. Used where a smooth
/// estimate beats a bucketed one (slowdown distributions); artifact
/// percentiles stay on nearest_rank_sorted for cross-artifact equality.
///
/// Same edge conventions: empty -> 0, p <= 0 -> min, p >= 1 -> max.
double fractional_rank_sorted(const std::vector<double>& sorted, double p);

}  // namespace f2t::stats
