#pragma once

#include <vector>

namespace f2t::stats {

/// Nearest-rank percentile over an already-sorted (ascending) sample:
/// the smallest element x such that at least ceil(p * n) samples are
/// <= x. The single definition shared by every artifact writer — the
/// telemetry rollups (obs::SamplerReport) and the campaign aggregates
/// (core::aggregate_runs) must bucket identically or cross-artifact
/// comparisons lie.
///
/// Conventions (pinned by tests/test_stats.cpp):
///  - empty sample -> 0;
///  - p <= 0 -> the minimum (rank clamps up to 1);
///  - p >= 1 -> the maximum (rank clamps down to n).
double nearest_rank_sorted(const std::vector<double>& sorted, double p);

}  // namespace f2t::stats
