#include "stats/cdf.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2t::stats {

void Cdf::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::min() {
  if (empty()) throw std::logic_error("Cdf::min: empty");
  ensure_sorted();
  return samples_.front();
}

double Cdf::max() {
  if (empty()) throw std::logic_error("Cdf::max: empty");
  ensure_sorted();
  return samples_.back();
}

double Cdf::mean() const {
  if (empty()) return 0.0;
  double sum = 0;
  for (const double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) {
  if (empty()) throw std::logic_error("Cdf::quantile: empty");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Cdf::quantile: q out of [0,1]");
  }
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

double Cdf::fraction_above(double x) {
  if (empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

double Cdf::fraction_at_or_below(double x) { return 1.0 - fraction_above(x); }

std::vector<Cdf::Point> Cdf::tail_points(double from,
                                         std::size_t max_points) {
  ensure_sorted();
  std::vector<Point> out;
  const auto begin =
      std::upper_bound(samples_.begin(), samples_.end(), from);
  const std::size_t n = static_cast<std::size_t>(samples_.end() - begin);
  if (n == 0) return out;
  const std::size_t stride =
      max_points == 0 ? 1 : std::max<std::size_t>(1, n / max_points);
  const double total = static_cast<double>(samples_.size());
  for (std::size_t i = 0; i < n; i += stride) {
    const std::size_t index =
        static_cast<std::size_t>(begin - samples_.begin()) + i;
    out.push_back(Point{samples_[index],
                        static_cast<double>(index + 1) / total});
  }
  // Always include the largest sample so the tail endpoint is visible.
  if (out.back().value != samples_.back()) {
    out.push_back(Point{samples_.back(), 1.0});
  }
  return out;
}

}  // namespace f2t::stats
