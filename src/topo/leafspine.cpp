#include "topo/leafspine.hpp"

#include <stdexcept>
#include <string>

#include "topo/addressing.hpp"

namespace f2t::topo {

BuiltTopology build_leaf_spine(net::Network& network,
                               const LeafSpineOptions& options) {
  const int n = options.ports;
  if (n < 4 || n % 2 != 0) {
    throw std::invalid_argument("leaf-spine: ports must be even and >= 4");
  }
  const int spines = n / 2;
  // The F² rewiring frees two downward ports on every spine by taking two
  // leaves out of service; the remaining leaves keep their full uplink
  // fan-out, so every spine's across neighbour still reaches every leaf.
  const int leaves = options.f2_rewire ? n - 2 : n;
  const int hosts_per_leaf =
      options.hosts_per_leaf >= 0 ? options.hosts_per_leaf : n / 2;
  if (leaves > AddressPlan::kMaxTors || spines > AddressPlan::kMaxCores ||
      hosts_per_leaf > AddressPlan::kMaxHostsPerTor) {
    throw std::invalid_argument("leaf-spine: exceeds address plan capacity");
  }
  if (options.f2_rewire && leaves > AddressPlan::kMaxBackupCoveredTors) {
    throw std::invalid_argument(
        "leaf-spine: F^2 rewiring exceeds the backup-prefix cover (256 ToRs)");
  }

  BuiltTopology topo;
  topo.network = &network;
  topo.kind = TopologyKind::kLeafSpine;
  topo.ports = n;
  topo.f2 = options.f2_rewire;
  topo.ring_width = options.f2_rewire ? 2 : 0;

  for (int s = 0; s < spines; ++s) {
    // Spines sit at the "core" tier of the generic description.
    topo.cores.push_back(&network.add_switch("spine" + std::to_string(s),
                                             AddressPlan::core_router_id(s)));
  }
  for (int l = 0; l < leaves; ++l) {
    topo.tors.push_back(&network.add_switch("leaf" + std::to_string(l),
                                            AddressPlan::tor_router_id(l)));
  }
  // One core group holding all spines: the ring (if any) spans them all.
  topo.core_groups.push_back(topo.cores);

  for (int s = 0; s < spines; ++s) {
    for (int l = 0; l < leaves; ++l) {
      network.connect_default(*topo.cores[static_cast<std::size_t>(s)],
                              *topo.tors[static_cast<std::size_t>(l)]);
    }
  }

  if (options.f2_rewire && spines >= 2) {
    for (int s = 0; s < spines; ++s) {
      net::L3Switch& from = *topo.cores[static_cast<std::size_t>(s)];
      net::L3Switch& to =
          *topo.cores[static_cast<std::size_t>((s + 1) % spines)];
      network.connect_default(from, to);
      topo.rings[&from].right.push_back(
          static_cast<net::PortId>(from.port_count() - 1));
      topo.rings[&to].left.push_back(
          static_cast<net::PortId>(to.port_count() - 1));
    }
  }

  for (std::size_t l = 0; l < topo.tors.size(); ++l) {
    net::L3Switch* leaf = topo.tors[l];
    topo.subnet_of_tor[leaf] = AddressPlan::tor_subnet(static_cast<int>(l));
    for (int h = 0; h < hosts_per_leaf; ++h) {
      net::Host& host = network.add_host(
          "h" + std::to_string(l) + "_" + std::to_string(h),
          AddressPlan::host_addr(static_cast<int>(l), h), leaf);
      topo.hosts.push_back(&host);
      topo.hosts_of_tor[leaf].push_back(&host);
    }
  }
  return topo;
}

}  // namespace f2t::topo
