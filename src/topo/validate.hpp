#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace f2t::topo {

/// Structural invariant checks over a built topology. Returns a list of
/// human-readable violations (empty = valid). Checked invariants:
///   - no switch uses more ports than the homogeneous port count N
///     (hosts count against ToR ports);
///   - every host hangs off exactly one ToR;
///   - the physical graph is connected;
///   - in F² variants, every ring member has matching right/left across
///     ports, the across links close into rings, and ring ports connect
///     switches of the same tier.
std::vector<std::string> validate_topology(const BuiltTopology& topo);

/// Convenience: throws std::logic_error listing all violations.
void validate_topology_or_throw(const BuiltTopology& topo);

}  // namespace f2t::topo
