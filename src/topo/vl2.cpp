#include "topo/vl2.hpp"

#include <stdexcept>
#include <string>

#include "topo/addressing.hpp"

namespace f2t::topo {

BuiltTopology build_vl2(net::Network& network, const Vl2Options& options) {
  const int n = options.ports;
  if (n < 4 || n % 2 != 0) {
    throw std::invalid_argument("vl2: ports must be even and >= 4");
  }
  const int ints = n / 2;
  const int aggs = n;
  // A pair of aggs serves N/2 dual-homed ToRs; the F² rewiring takes one
  // ToR per pair out of service to free one downward port on each agg of
  // the pair, keeping the rest dual-homed.
  const int tors_per_pair = options.f2_rewire ? n / 2 - 1 : n / 2;
  const int pairs = n / 2;
  const int tors = pairs * tors_per_pair;
  if (tors > AddressPlan::kMaxTors || aggs > AddressPlan::kMaxAggs ||
      ints > AddressPlan::kMaxCores ||
      options.hosts_per_tor > AddressPlan::kMaxHostsPerTor) {
    throw std::invalid_argument("vl2: exceeds address plan capacity");
  }
  if (options.f2_rewire && tors > AddressPlan::kMaxBackupCoveredTors) {
    throw std::invalid_argument(
        "vl2: F^2 rewiring exceeds the backup-prefix cover (256 ToRs)");
  }

  BuiltTopology topo;
  topo.network = &network;
  topo.kind = TopologyKind::kVl2;
  topo.ports = n;
  topo.f2 = options.f2_rewire;
  topo.ring_width = options.f2_rewire ? 2 : 0;

  for (int i = 0; i < ints; ++i) {
    topo.cores.push_back(&network.add_switch("int" + std::to_string(i),
                                             AddressPlan::core_router_id(i)));
  }
  topo.core_groups.push_back(topo.cores);

  for (int k = 0; k < pairs; ++k) {
    BuiltTopology::Pod pod;
    for (int j = 0; j < 2; ++j) {
      const int a = 2 * k + j;
      pod.aggs.push_back(&network.add_switch("agg" + std::to_string(a),
                                             AddressPlan::agg_router_id(a)));
    }
    for (int t = 0; t < tors_per_pair; ++t) {
      const int tor_index = k * tors_per_pair + t;
      pod.tors.push_back(
          &network.add_switch("tor" + std::to_string(tor_index),
                              AddressPlan::tor_router_id(tor_index)));
    }
    topo.aggs.insert(topo.aggs.end(), pod.aggs.begin(), pod.aggs.end());
    topo.tors.insert(topo.tors.end(), pod.tors.begin(), pod.tors.end());
    topo.pods.push_back(std::move(pod));
  }

  // Aggregation <-> intermediate full bipartite mesh. With the rewiring,
  // aggregation switch a frees one uplink (to intermediate a mod N/2).
  for (int a = 0; a < aggs; ++a) {
    for (int i = 0; i < ints; ++i) {
      if (options.f2_rewire && i == a % ints) continue;
      network.connect_default(*topo.aggs[static_cast<std::size_t>(a)],
                              *topo.cores[static_cast<std::size_t>(i)]);
    }
  }

  // Dual-homed ToRs (all in-service ToRs keep both uplinks).
  for (int k = 0; k < pairs; ++k) {
    const auto& pod = topo.pods[static_cast<std::size_t>(k)];
    for (int t = 0; t < tors_per_pair; ++t) {
      for (int j = 0; j < 2; ++j) {
        network.connect_default(*pod.aggs[static_cast<std::size_t>(j)],
                                *pod.tors[static_cast<std::size_t>(t)]);
      }
    }
  }

  // Per-pair across rings: two parallel links between the pair members
  // (exactly like a 2-agg fat-tree pod in the testbed prototype).
  if (options.f2_rewire) {
    for (const auto& pod : topo.pods) {
      for (int j = 0; j < 2; ++j) {
        net::L3Switch& from = *pod.aggs[static_cast<std::size_t>(j)];
        net::L3Switch& to = *pod.aggs[static_cast<std::size_t>(1 - j)];
        network.connect_default(from, to);
        topo.rings[&from].right.push_back(
            static_cast<net::PortId>(from.port_count() - 1));
        topo.rings[&to].left.push_back(
            static_cast<net::PortId>(to.port_count() - 1));
      }
    }
  }

  for (std::size_t t = 0; t < topo.tors.size(); ++t) {
    net::L3Switch* tor = topo.tors[t];
    topo.subnet_of_tor[tor] = AddressPlan::tor_subnet(static_cast<int>(t));
    for (int h = 0; h < options.hosts_per_tor; ++h) {
      net::Host& host = network.add_host(
          "h" + std::to_string(t) + "_" + std::to_string(h),
          AddressPlan::host_addr(static_cast<int>(t), h), tor);
      topo.hosts.push_back(&host);
      topo.hosts_of_tor[tor].push_back(&host);
    }
  }
  return topo;
}

}  // namespace f2t::topo
