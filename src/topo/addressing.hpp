#pragma once

#include <stdexcept>

#include "net/ipv4.hpp"

namespace f2t::topo {

/// Production-DCN address plan, mirroring Fig 3(d) of the paper.
///
/// Every switch bundles its ports into one L3 interface with a single
/// address; hosts under ToR t live in 10.11.t.0/24, which the ToR
/// redistributes into the routing protocol. All host subnets are covered
/// by the DCN prefix 10.11.0.0/16, and the F²Tree backup routes use the
/// chain of successively *shorter* prefixes that still cover it
/// (10.11.0.0/16, 10.10.0.0/15, 10.8.0.0/14, 10.0.0.0/13 …) so that the
/// rightward across link is always preferred over the leftward one during
/// fast rerouting — the loop-avoidance trick of §II-B.
///
/// The first 256 indices of each role keep the paper's dotted-quad layout
/// exactly (10.11.t for ToRs, 10.12.a for aggs, 10.13.c for cores), so
/// every address in an existing topology is unchanged. Indices >= 256 —
/// what k=32/48/64 fat trees need — continue into disjoint second-octet
/// bands: ToRs into 10.[32,64), aggs into 10.[64,96), cores into
/// 10.[96,128), 256 indices per octet. Extended ToR subnets fall outside
/// the backup-prefix chain's cover (10.8.0.0/13), which is why the
/// F²-rewired builders keep the 256-ToR cap: the paper's Table II backups
/// must cover every host.
struct AddressPlan {
  static net::Ipv4Addr tor_router_id(int t) {
    if (t < 256) return net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(t), 1);
    return extended(kTorBand, t, 1);
  }
  static net::Prefix tor_subnet(int t) {
    if (t < 256) {
      return net::Prefix(
          net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(t), 0), 24);
    }
    return net::Prefix(extended(kTorBand, t, 0), 24);
  }
  static net::Ipv4Addr host_addr(int t, int h) {
    if (t < 256) {
      return net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(t),
                           static_cast<std::uint8_t>(10 + h));
    }
    return extended(kTorBand, t, static_cast<std::uint8_t>(10 + h));
  }
  static net::Ipv4Addr agg_router_id(int a) {
    if (a < 256) return net::Ipv4Addr(10, 12, static_cast<std::uint8_t>(a), 1);
    return extended(kAggBand, a, 1);
  }
  static net::Ipv4Addr core_router_id(int c) {
    if (c < 256) return net::Ipv4Addr(10, 13, static_cast<std::uint8_t>(c), 1);
    return extended(kCoreBand, c, 1);
  }

  /// 10.11.0.0/16 — "prefix of all hosts" (Table II row 3). Only true of
  /// the first 256 ToRs; the F²-rewired builders enforce that cap.
  static net::Prefix dcn_prefix() {
    return net::Prefix(net::Ipv4Addr(10, 11, 0, 0), 16);
  }

  /// The i-th backup prefix (i = 0 is the DCN prefix itself; larger i are
  /// successively shorter covers: /15, /14, /13 ...). Valid for i in [0, 3].
  static net::Prefix backup_prefix(int i) {
    return net::Prefix(net::Ipv4Addr(10, 11, 0, 0), 16 - i);
  }

  /// Upper bounds imposed by the dotted-quad plan: 256 legacy indices
  /// plus a 32-octet extension band per role.
  static constexpr int kMaxTors = 256 + 32 * 256;
  static constexpr int kMaxAggs = 256 + 32 * 256;
  static constexpr int kMaxCores = 256 + 32 * 256;
  static constexpr int kMaxHostsPerTor = 240;
  /// The ToR cap the Table II backup-prefix chain can actually cover;
  /// F²-rewired builders must stay below it.
  static constexpr int kMaxBackupCoveredTors = 256;

 private:
  static constexpr int kTorBand = 32;   // 10.[32,64).x
  static constexpr int kAggBand = 64;   // 10.[64,96).x
  static constexpr int kCoreBand = 96;  // 10.[96,128).x

  static net::Ipv4Addr extended(int band, int index, std::uint8_t last) {
    const int off = index - 256;
    if (off < 0 || off >= 32 * 256) {
      throw std::out_of_range("AddressPlan: index exceeds extension band");
    }
    return net::Ipv4Addr(10, static_cast<std::uint8_t>(band + off / 256),
                         static_cast<std::uint8_t>(off % 256), last);
  }
};

}  // namespace f2t::topo
