#pragma once

#include "net/ipv4.hpp"

namespace f2t::topo {

/// Production-DCN address plan, mirroring Fig 3(d) of the paper.
///
/// Every switch bundles its ports into one L3 interface with a single
/// address; hosts under ToR t live in 10.11.t.0/24, which the ToR
/// redistributes into the routing protocol. All host subnets are covered
/// by the DCN prefix 10.11.0.0/16, and the F²Tree backup routes use the
/// chain of successively *shorter* prefixes that still cover it
/// (10.11.0.0/16, 10.10.0.0/15, 10.8.0.0/14, 10.0.0.0/13 …) so that the
/// rightward across link is always preferred over the leftward one during
/// fast rerouting — the loop-avoidance trick of §II-B.
struct AddressPlan {
  static net::Ipv4Addr tor_router_id(int t) {
    return net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(t), 1);
  }
  static net::Prefix tor_subnet(int t) {
    return net::Prefix(net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(t), 0),
                       24);
  }
  static net::Ipv4Addr host_addr(int t, int h) {
    return net::Ipv4Addr(10, 11, static_cast<std::uint8_t>(t),
                         static_cast<std::uint8_t>(10 + h));
  }
  static net::Ipv4Addr agg_router_id(int a) {
    return net::Ipv4Addr(10, 12, static_cast<std::uint8_t>(a), 1);
  }
  static net::Ipv4Addr core_router_id(int c) {
    return net::Ipv4Addr(10, 13, static_cast<std::uint8_t>(c), 1);
  }

  /// 10.11.0.0/16 — "prefix of all hosts" (Table II row 3).
  static net::Prefix dcn_prefix() {
    return net::Prefix(net::Ipv4Addr(10, 11, 0, 0), 16);
  }

  /// The i-th backup prefix (i = 0 is the DCN prefix itself; larger i are
  /// successively shorter covers: /15, /14, /13 ...). Valid for i in [0, 3].
  static net::Prefix backup_prefix(int i) {
    return net::Prefix(net::Ipv4Addr(10, 11, 0, 0), 16 - i);
  }

  /// Upper bounds imposed by the dotted-quad plan.
  static constexpr int kMaxTors = 256;
  static constexpr int kMaxAggs = 256;
  static constexpr int kMaxCores = 256;
  static constexpr int kMaxHostsPerTor = 240;
};

}  // namespace f2t::topo
