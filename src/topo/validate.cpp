#include "topo/validate.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace f2t::topo {

namespace {

void check_port_budgets(const BuiltTopology& topo,
                        std::vector<std::string>& out) {
  for (const net::L3Switch* sw : topo.all_switches()) {
    if (static_cast<int>(sw->port_count()) > topo.ports) {
      std::ostringstream os;
      os << sw->name() << " uses " << sw->port_count() << " ports > N="
         << topo.ports;
      out.push_back(os.str());
    }
  }
}

void check_hosts(const BuiltTopology& topo, std::vector<std::string>& out) {
  for (const net::Host* host : topo.hosts) {
    if (host->port_count() != 1) {
      out.push_back(host->name() + " is not single-homed");
    }
  }
  std::size_t mapped = 0;
  for (const auto& [tor, hosts] : topo.hosts_of_tor) mapped += hosts.size();
  if (mapped != topo.hosts.size()) {
    out.push_back("hosts_of_tor does not cover all hosts");
  }
}

/// Every router id and host address must be distinct: the extended address
/// bands (k >= 32 fat trees) must never collide with the legacy dotted-quad
/// layout or with each other.
void check_addresses(const BuiltTopology& topo,
                     std::vector<std::string>& out) {
  std::unordered_set<std::uint32_t> seen;
  auto claim = [&](std::uint32_t value, const std::string& owner) {
    if (!seen.insert(value).second) {
      out.push_back("duplicate address " + net::Ipv4Addr(value).str() +
                    " at " + owner);
    }
  };
  for (const net::L3Switch* sw : topo.all_switches()) {
    claim(sw->router_id().value(), sw->name());
  }
  for (const net::Host* host : topo.hosts) {
    claim(host->addr().value(), host->name());
  }
}

void check_connected(const BuiltTopology& topo,
                     std::vector<std::string>& out) {
  if (topo.network->node_count() == 0) {
    out.push_back("empty network");
    return;
  }
  std::unordered_set<const net::Node*> visited;
  std::vector<const net::Node*> frontier{&topo.network->node(0)};
  visited.insert(frontier.front());
  while (!frontier.empty()) {
    const net::Node* u = frontier.back();
    frontier.pop_back();
    for (const auto& port : u->ports()) {
      if (port.link == nullptr) continue;
      const net::Node* v = port.link->peer_of(*u).node;
      if (visited.insert(v).second) frontier.push_back(v);
    }
  }
  if (visited.size() != topo.network->node_count()) {
    std::ostringstream os;
    os << "graph not connected: reached " << visited.size() << " of "
       << topo.network->node_count() << " nodes";
    out.push_back(os.str());
  }
}

void check_rings(const BuiltTopology& topo, std::vector<std::string>& out) {
  if (!topo.f2) {
    if (!topo.rings.empty()) out.push_back("non-F2 topology has ring ports");
    return;
  }
  const std::size_t expected =
      static_cast<std::size_t>(topo.ring_width) / 2;
  for (const auto& [sw, ring] : topo.rings) {
    if (ring.right.size() != expected || ring.left.size() != expected) {
      std::ostringstream os;
      os << sw->name() << " ring ports right=" << ring.right.size()
         << " left=" << ring.left.size() << ", expected " << expected
         << " each";
      out.push_back(os.str());
    }
    // Across links must join switches of the same tier.
    const bool is_agg =
        std::find(topo.aggs.begin(), topo.aggs.end(), sw) != topo.aggs.end();
    const bool is_core =
        std::find(topo.cores.begin(), topo.cores.end(), sw) !=
        topo.cores.end();
    auto same_tier = [&](net::PortId p) {
      const auto& info = sw->port(p);
      const auto* peer =
          dynamic_cast<const net::L3Switch*>(&topo.network->node(info.peer_node));
      if (peer == nullptr) return false;
      const bool peer_agg = std::find(topo.aggs.begin(), topo.aggs.end(),
                                      peer) != topo.aggs.end();
      const bool peer_core = std::find(topo.cores.begin(), topo.cores.end(),
                                       peer) != topo.cores.end();
      return (is_agg && peer_agg) || (is_core && peer_core);
    };
    for (const net::PortId p : ring.right) {
      if (!same_tier(p)) {
        out.push_back(sw->name() + " right across port leaves its tier");
      }
    }
    for (const net::PortId p : ring.left) {
      if (!same_tier(p)) {
        out.push_back(sw->name() + " left across port leaves its tier");
      }
    }
  }
}

}  // namespace

std::vector<std::string> validate_topology(const BuiltTopology& topo) {
  std::vector<std::string> out;
  if (topo.network == nullptr) {
    out.push_back("topology has no network");
    return out;
  }
  check_port_budgets(topo, out);
  check_hosts(topo, out);
  check_addresses(topo, out);
  check_connected(topo, out);
  check_rings(topo, out);
  return out;
}

void validate_topology_or_throw(const BuiltTopology& topo) {
  const auto violations = validate_topology(topo);
  if (violations.empty()) return;
  std::string message = "topology invalid:";
  for (const auto& v : violations) message += "\n  - " + v;
  throw std::logic_error(message);
}

}  // namespace f2t::topo
