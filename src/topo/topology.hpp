#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"

namespace f2t::topo {

enum class TopologyKind { kFatTree, kF2Tree, kLeafSpine, kVl2 };

const char* topology_kind_name(TopologyKind kind);

/// Ring attachment of one switch in an F²-rewired topology: the reserved
/// ports to its across neighbours, ordered rightward then leftward (then
/// right+2 / left-2 when the ring is 4 wide).
struct RingPorts {
  std::vector<net::PortId> right;  ///< ports toward (index+1), (index+2)…
  std::vector<net::PortId> left;   ///< ports toward (index-1), (index-2)…
};

/// Everything a built topology exposes to experiments: the layer rosters,
/// pod structure, hosts, and (for F² variants) the ring metadata needed to
/// configure backup routes and to construct the paper's failure
/// conditions.
struct BuiltTopology {
  net::Network* network = nullptr;
  TopologyKind kind = TopologyKind::kFatTree;
  int ports = 0;       ///< N, the homogeneous switch port count
  bool f2 = false;     ///< rewired with across rings?
  int ring_width = 0;  ///< 0, 2 or 4

  std::vector<net::L3Switch*> tors;
  std::vector<net::L3Switch*> aggs;
  std::vector<net::L3Switch*> cores;  ///< spines for Leaf-Spine, ints for VL2

  struct Pod {
    std::vector<net::L3Switch*> aggs;
    std::vector<net::L3Switch*> tors;
  };
  std::vector<Pod> pods;
  std::vector<std::vector<net::L3Switch*>> core_groups;

  std::vector<net::Host*> hosts;
  std::unordered_map<const net::L3Switch*, std::vector<net::Host*>>
      hosts_of_tor;
  std::unordered_map<const net::L3Switch*, net::Prefix> subnet_of_tor;

  std::unordered_map<const net::L3Switch*, RingPorts> rings;

  /// All switches, ToR first, then aggregation, then core.
  std::vector<net::L3Switch*> all_switches() const;

  /// The pod index containing an aggregation switch, or -1.
  int pod_of_agg(const net::L3Switch* sw) const;
  /// Position of an agg within its pod, or -1.
  int index_in_pod(const net::L3Switch* sw) const;

  /// ToR of a host (the peer on its uplink).
  net::L3Switch* tor_of_host(const net::Host* host) const;

  std::string summary() const;
};

}  // namespace f2t::topo
