#pragma once

#include "topo/fattree.hpp"
#include "topo/topology.hpp"

namespace f2t::topo {

/// Rewire-mode F²Tree: the paper's prototype transformation applied to a
/// standard fat tree of the same switch/host population (Fig 1(b)).
/// This is the variant used in the testbed and emulation comparisons.
inline BuiltTopology build_f2tree(net::Network& network, int ports,
                                  int ring_width = 2) {
  FatTreeOptions options;
  options.ports = ports;
  options.f2_rewire = true;
  options.ring_width = ring_width;
  return build_fat_tree(network, options);
}

/// Options for the from-scratch F²Tree of Table I.
struct F2TreeScaledOptions {
  int ports = 6;           ///< N: even, >= 6 (N=4 degenerates to 1 ToR/pod)
  int hosts_per_tor = -1;  ///< default N/2
};

/// Scale-mode F²Tree: built to the Table I geometry — N−2 pods of N/2
/// aggregation and N/2−1 ToR switches, N/2 core groups of N/2−1 cores,
/// rings everywhere — so that switch and host counts match the paper's
/// closed forms ((5/4)N² − (7/2)N + 2 switches, N³/4 − N² + N hosts),
/// which the test suite verifies against core/scalability.
BuiltTopology build_f2tree_scaled(net::Network& network,
                                  const F2TreeScaledOptions& options);

}  // namespace f2t::topo
