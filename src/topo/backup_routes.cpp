#include "topo/backup_routes.hpp"

#include <stdexcept>

#include "topo/addressing.hpp"

namespace f2t::topo {

BackupRouteReport install_backup_routes(BuiltTopology& topo) {
  BackupRouteReport report;
  for (auto& [sw_const, ring] : topo.rings) {
    auto* sw = const_cast<net::L3Switch*>(sw_const);
    // Rightward ports first so that, for any number of ring ports, the
    // longest backup prefix (and therefore fast-reroute preference) is
    // "forward rightward while a rightward link works".
    std::vector<net::PortId> ordered = ring.right;
    ordered.insert(ordered.end(), ring.left.begin(), ring.left.end());
    if (static_cast<int>(ordered.size()) > 4) {
      throw std::logic_error("backup routes: ring wider than 4 unsupported");
    }
    int i = 0;
    for (const net::PortId port : ordered) {
      sw->fib().install(routing::Route{
          AddressPlan::backup_prefix(i),
          {routing::NextHop{port, sw->port(port).peer_addr}},
          routing::RouteSource::kStatic});
      ++i;
      ++report.routes_installed;
    }
    if (i > 0) ++report.switches_configured;
  }
  return report;
}

BackupRouteReport install_backup_routes_equal_length(BuiltTopology& topo) {
  BackupRouteReport report;
  for (auto& [sw_const, ring] : topo.rings) {
    auto* sw = const_cast<net::L3Switch*>(sw_const);
    std::vector<routing::NextHop> hops;
    for (const net::PortId port : ring.right) {
      hops.push_back(routing::NextHop{port, sw->port(port).peer_addr});
    }
    for (const net::PortId port : ring.left) {
      hops.push_back(routing::NextHop{port, sw->port(port).peer_addr});
    }
    if (hops.empty()) continue;
    sw->fib().install(routing::Route{AddressPlan::dcn_prefix(), hops,
                                     routing::RouteSource::kStatic});
    ++report.switches_configured;
    report.routes_installed += static_cast<int>(hops.size());
  }
  return report;
}

}  // namespace f2t::topo
