#include "topo/topology.hpp"

#include <sstream>

namespace f2t::topo {

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFatTree: return "fat-tree";
    case TopologyKind::kF2Tree: return "f2tree";
    case TopologyKind::kLeafSpine: return "leaf-spine";
    case TopologyKind::kVl2: return "vl2";
  }
  return "?";
}

std::vector<net::L3Switch*> BuiltTopology::all_switches() const {
  std::vector<net::L3Switch*> out;
  out.reserve(tors.size() + aggs.size() + cores.size());
  out.insert(out.end(), tors.begin(), tors.end());
  out.insert(out.end(), aggs.begin(), aggs.end());
  out.insert(out.end(), cores.begin(), cores.end());
  return out;
}

int BuiltTopology::pod_of_agg(const net::L3Switch* sw) const {
  for (std::size_t p = 0; p < pods.size(); ++p) {
    for (const net::L3Switch* agg : pods[p].aggs) {
      if (agg == sw) return static_cast<int>(p);
    }
  }
  return -1;
}

int BuiltTopology::index_in_pod(const net::L3Switch* sw) const {
  for (const Pod& pod : pods) {
    for (std::size_t i = 0; i < pod.aggs.size(); ++i) {
      if (pod.aggs[i] == sw) return static_cast<int>(i);
    }
  }
  // Also allow core-group lookup: index within its group.
  for (const auto& group : core_groups) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (group[i] == sw) return static_cast<int>(i);
    }
  }
  return -1;
}

net::L3Switch* BuiltTopology::tor_of_host(const net::Host* host) const {
  for (const auto& [tor, tor_hosts] : hosts_of_tor) {
    for (const net::Host* h : tor_hosts) {
      if (h == host) return const_cast<net::L3Switch*>(tor);
    }
  }
  return nullptr;
}

std::string BuiltTopology::summary() const {
  std::ostringstream os;
  os << topology_kind_name(kind) << " N=" << ports << (f2 ? " (F2)" : "")
     << ": " << tors.size() << " ToR, " << aggs.size() << " agg, "
     << cores.size() << " core, " << hosts.size() << " hosts, "
     << network->link_count() << " links";
  return os.str();
}

}  // namespace f2t::topo
