#pragma once

#include "topo/topology.hpp"

namespace f2t::topo {

/// Options for the 3-layer fat-tree family.
///
/// With `f2_rewire` false this is the standard k-ary fat tree of [16]:
/// N pods of N/2 aggregation + N/2 ToR switches, (N/2)² cores, N/2 hosts
/// per ToR. With `f2_rewire` true the builder applies the paper's
/// transformation to the *same* switch and host population (the testbed
/// prototype of Fig 1(b)): every aggregation switch frees one downward and
/// one upward port (two of each for ring_width 4) and the freed ports form
/// per-pod and per-core-group rings of across links.
struct FatTreeOptions {
  int ports = 4;        ///< N: even, >= 4
  bool f2_rewire = false;
  int ring_width = 2;   ///< 2 or 4 across links per switch (if rewired)
  int hosts_per_tor = -1;  ///< default N/2
};

BuiltTopology build_fat_tree(net::Network& network,
                             const FatTreeOptions& options);

}  // namespace f2t::topo
