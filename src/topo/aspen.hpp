#pragma once

#include "topo/topology.hpp"

namespace f2t::topo {

/// Aspen tree <f, 0> (Walraed-Sullivan et al., CoNEXT'13) — the paper's
/// Table I comparator. Fault tolerance f is added between the aggregation
/// and core layers only: every aggregation switch connects to each of its
/// cores with f+1 parallel links, paid for by supporting 1/(f+1) of the
/// fat tree's pods (N/(f+1) pods, N²/(4(f+1)) cores; nodes N³/(4(f+1))).
///
/// In this library the duplicated links yield immediate backup via plain
/// ECMP (no new protocol needed for the simulator's purposes), which
/// exposes exactly the paper's critique: core<->agg failures recover
/// fast, but ToR<->agg downward failures still wait for the control
/// plane — unlike F²Tree, which protects every layer for two rewired
/// links and no lost pods beyond one ToR each.
struct AspenOptions {
  int ports = 8;  ///< N: even; N % (2*(f+1)) == 0
  int fault_tolerance = 1;  ///< f >= 1
  int hosts_per_tor = -1;   ///< default N/2
};

BuiltTopology build_aspen_tree(net::Network& network,
                               const AspenOptions& options);

}  // namespace f2t::topo
