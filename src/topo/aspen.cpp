#include "topo/aspen.hpp"

#include <stdexcept>
#include <string>

#include "topo/addressing.hpp"

namespace f2t::topo {

BuiltTopology build_aspen_tree(net::Network& network,
                               const AspenOptions& options) {
  const int n = options.ports;
  const int f = options.fault_tolerance;
  if (n < 4 || n % 2 != 0) {
    throw std::invalid_argument("aspen: ports must be even and >= 4");
  }
  if (f < 1) throw std::invalid_argument("aspen: fault tolerance must be >= 1");
  if (n % (2 * (f + 1)) != 0) {
    throw std::invalid_argument(
        "aspen: ports must be divisible by 2*(f+1)");
  }
  const int half = n / 2;
  const int pods = n / (f + 1);
  const int cores_per_group = half / (f + 1);
  const int hosts_per_tor =
      options.hosts_per_tor >= 0 ? options.hosts_per_tor : half;
  if (pods * half > AddressPlan::kMaxTors ||
      pods * half > AddressPlan::kMaxAggs ||
      half * cores_per_group > AddressPlan::kMaxCores ||
      hosts_per_tor > AddressPlan::kMaxHostsPerTor) {
    throw std::invalid_argument("aspen: exceeds address plan capacity");
  }

  BuiltTopology topo;
  topo.network = &network;
  topo.kind = TopologyKind::kFatTree;  // an (engineered) fat-tree family
  topo.ports = n;
  topo.f2 = false;

  for (int c = 0; c < half * cores_per_group; ++c) {
    topo.cores.push_back(&network.add_switch("core" + std::to_string(c),
                                             AddressPlan::core_router_id(c)));
  }
  topo.core_groups.resize(static_cast<std::size_t>(half));
  for (int j = 0; j < half; ++j) {
    for (int i = 0; i < cores_per_group; ++i) {
      topo.core_groups[static_cast<std::size_t>(j)].push_back(
          topo.cores[static_cast<std::size_t>(j * cores_per_group + i)]);
    }
  }

  for (int p = 0; p < pods; ++p) {
    BuiltTopology::Pod pod;
    for (int a = 0; a < half; ++a) {
      const int agg_index = p * half + a;
      pod.aggs.push_back(
          &network.add_switch("agg" + std::to_string(agg_index),
                              AddressPlan::agg_router_id(agg_index)));
    }
    for (int t = 0; t < half; ++t) {
      const int tor_index = p * half + t;
      pod.tors.push_back(
          &network.add_switch("tor" + std::to_string(tor_index),
                              AddressPlan::tor_router_id(tor_index)));
    }
    topo.aggs.insert(topo.aggs.end(), pod.aggs.begin(), pod.aggs.end());
    topo.tors.insert(topo.tors.end(), pod.tors.begin(), pod.tors.end());
    topo.pods.push_back(std::move(pod));
  }

  // Standard fat-tree pod wiring: full agg x tor bipartite graph.
  for (const auto& pod : topo.pods) {
    for (net::L3Switch* agg : pod.aggs) {
      for (net::L3Switch* tor : pod.tors) {
        network.connect_default(*agg, *tor);
      }
    }
  }

  // The fault-tolerant layer: agg j connects each core of group j with
  // f+1 parallel links.
  for (const auto& pod : topo.pods) {
    for (std::size_t a = 0; a < pod.aggs.size(); ++a) {
      for (net::L3Switch* core : topo.core_groups[a]) {
        for (int dup = 0; dup <= f; ++dup) {
          network.connect_default(*pod.aggs[a], *core);
        }
      }
    }
  }

  for (std::size_t t = 0; t < topo.tors.size(); ++t) {
    net::L3Switch* tor = topo.tors[t];
    topo.subnet_of_tor[tor] = AddressPlan::tor_subnet(static_cast<int>(t));
    for (int h = 0; h < hosts_per_tor; ++h) {
      net::Host& host = network.add_host(
          "h" + std::to_string(t) + "_" + std::to_string(h),
          AddressPlan::host_addr(static_cast<int>(t), h), tor);
      topo.hosts.push_back(&host);
      topo.hosts_of_tor[tor].push_back(&host);
    }
  }
  return topo;
}

}  // namespace f2t::topo
