#pragma once

#include <iosfwd>
#include <string>

#include "topo/topology.hpp"

namespace f2t::topo {

/// Emits a Graphviz dot rendering of a built topology: tiers as ranks,
/// across links highlighted (dashed red), hosts optional. Handy for
/// eyeballing a rewiring before trusting it with an experiment:
///
///   topology_report f2 8 --dot | dot -Tsvg > f2tree.svg
struct GraphvizOptions {
  bool include_hosts = false;
  bool highlight_across_links = true;
};

void write_graphviz(std::ostream& os, const BuiltTopology& topo,
                    const GraphvizOptions& options = {});

std::string to_graphviz(const BuiltTopology& topo,
                        const GraphvizOptions& options = {});

}  // namespace f2t::topo
