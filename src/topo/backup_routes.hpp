#pragma once

#include "topo/topology.hpp"

namespace f2t::topo {

/// Result of configuring the F²Tree backup static routes.
struct BackupRouteReport {
  int switches_configured = 0;
  int routes_installed = 0;
};

/// Installs the paper's backup static routes (Table II rows 3-4) on every
/// switch that owns across-ring ports.
///
/// Per switch the ordered list of across ports — rightward first, then
/// leftward (then right+2/left-2 for 4-wide rings) — receives static
/// routes to successively *shorter* covers of the DCN prefix:
/// 10.11.0.0/16 via the right neighbour, 10.10.0.0/15 via the left one.
/// The asymmetric lengths make rightward forwarding win whenever the right
/// across link is alive, which prevents the transient loop of Fig 3(b)
/// when two adjacent switches lose their downlinks simultaneously.
///
/// The routes are static and local: they are never redistributed into the
/// routing protocol, and being shorter than every protocol-computed route
/// they sit dormant in the FIB until longest-prefix match falls through —
/// i.e. until all next hops of the more-specific routes are detected down.
BackupRouteReport install_backup_routes(BuiltTopology& topo);

/// Ablation variant: installs both backup routes under the *same* prefix
/// (the DCN /16) as one 2-way ECMP group, discarding the paper's
/// careful asymmetry. Used to demonstrate the forwarding loop the paper's
/// design avoids.
BackupRouteReport install_backup_routes_equal_length(BuiltTopology& topo);

}  // namespace f2t::topo
