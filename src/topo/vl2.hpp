#pragma once

#include "topo/topology.hpp"

namespace f2t::topo {

/// VL2-style Clos (§V, Fig 7(b)), homogenised to N-port switches as in
/// Table I: N/2 intermediate switches, N aggregation switches (full
/// bipartite with the intermediates), N²/4 ToRs each dual-homed to two
/// adjacent aggregation switches, 2 hosts per ToR (N²/2 nodes).
///
/// The intermediate<->aggregation mesh already provides immediate backup
/// links downward (every ToR is reachable via its second aggregation
/// switch at equal cost), but aggregation->ToR downward links have none —
/// so the F² rewiring applies at the aggregation layer only: each
/// aggregation switch frees one downward and one upward port and the
/// aggregation switches form one ring of across links.
struct Vl2Options {
  int ports = 4;  ///< N: even, >= 4
  bool f2_rewire = false;
  int hosts_per_tor = 2;
};

BuiltTopology build_vl2(net::Network& network, const Vl2Options& options);

}  // namespace f2t::topo
