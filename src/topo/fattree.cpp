#include "topo/fattree.hpp"

#include <stdexcept>
#include <string>

#include "topo/addressing.hpp"

namespace f2t::topo {

namespace {

void validate(const FatTreeOptions& options) {
  const int n = options.ports;
  if (n < 4 || n % 2 != 0) {
    throw std::invalid_argument("fat tree: ports must be even and >= 4");
  }
  if (options.f2_rewire) {
    if (options.ring_width != 2 && options.ring_width != 4) {
      throw std::invalid_argument("fat tree: ring_width must be 2 or 4");
    }
    // Each agg/core must keep at least one downward and one upward link.
    if (options.ring_width / 2 >= n / 2) {
      throw std::invalid_argument(
          "fat tree: ring_width too large for this port count");
    }
  }
  if (n / 2 > AddressPlan::kMaxHostsPerTor ||
      n * n / 2 > AddressPlan::kMaxTors || n * n / 2 > AddressPlan::kMaxAggs ||
      n * n / 4 > AddressPlan::kMaxCores) {
    throw std::invalid_argument("fat tree: exceeds address plan capacity");
  }
  // F² backup routes cover hosts via the Table II prefix chain, which only
  // reaches the first 256 ToR subnets.
  if (options.f2_rewire && n * n / 2 > AddressPlan::kMaxBackupCoveredTors) {
    throw std::invalid_argument(
        "fat tree: F^2 rewiring exceeds the backup-prefix cover (256 ToRs)");
  }
}

/// Builds the ring over `members` (ports freed by the rewiring), recording
/// right/left ports per switch. `width` across links per switch.
void build_ring(net::Network& network, BuiltTopology& topo,
                const std::vector<net::L3Switch*>& members, int width) {
  const int n = static_cast<int>(members.size());
  if (n < 2) return;  // a 1-switch "ring" leaves reserved ports unused
  for (int offset = 1; offset <= width / 2; ++offset) {
    for (int i = 0; i < n; ++i) {
      net::L3Switch& from = *members[static_cast<std::size_t>(i)];
      net::L3Switch& to = *members[static_cast<std::size_t>((i + offset) % n)];
      network.connect_default(from, to);
      const net::PortId from_port =
          static_cast<net::PortId>(from.port_count() - 1);
      const net::PortId to_port = static_cast<net::PortId>(to.port_count() - 1);
      topo.rings[&from].right.push_back(from_port);
      topo.rings[&to].left.push_back(to_port);
    }
  }
}

}  // namespace

BuiltTopology build_fat_tree(net::Network& network,
                             const FatTreeOptions& options) {
  validate(options);
  const int n = options.ports;
  const int half = n / 2;
  const int pods = n;
  const int cores_per_group = half;  // group j serves agg index j of each pod
  const int hosts_per_tor =
      options.hosts_per_tor >= 0 ? options.hosts_per_tor : half;
  const int skip = options.f2_rewire ? options.ring_width / 2 : 0;

  // The rewiring frees one downward port per agg per ring link pair by
  // taking one ToR per pod out of service (the paper's prototype removes
  // both pod uplinks of S7 in Fig 1(b)): the remaining ToRs keep their
  // full uplink fan-out, which is what guarantees the across neighbour
  // always owns a working downlink to the destination ToR.
  const int tors_per_pod = half - skip;

  BuiltTopology topo;
  topo.network = &network;
  topo.kind = options.f2_rewire ? TopologyKind::kF2Tree : TopologyKind::kFatTree;
  topo.ports = n;
  topo.f2 = options.f2_rewire;
  topo.ring_width = options.f2_rewire ? options.ring_width : 0;

  // --- switches ---------------------------------------------------------
  for (int c = 0; c < half * half; ++c) {
    topo.cores.push_back(&network.add_switch("core" + std::to_string(c),
                                             AddressPlan::core_router_id(c)));
  }
  topo.core_groups.resize(static_cast<std::size_t>(half));
  for (int j = 0; j < half; ++j) {
    for (int i = 0; i < cores_per_group; ++i) {
      topo.core_groups[static_cast<std::size_t>(j)].push_back(
          topo.cores[static_cast<std::size_t>(j * cores_per_group + i)]);
    }
  }

  for (int p = 0; p < pods; ++p) {
    BuiltTopology::Pod pod;
    for (int a = 0; a < half; ++a) {
      const int agg_index = p * half + a;
      pod.aggs.push_back(&network.add_switch(
          "agg" + std::to_string(agg_index),
          AddressPlan::agg_router_id(agg_index)));
    }
    for (int t = 0; t < tors_per_pod; ++t) {
      const int tor_index = p * tors_per_pod + t;
      pod.tors.push_back(&network.add_switch(
          "tor" + std::to_string(tor_index),
          AddressPlan::tor_router_id(tor_index)));
    }
    topo.aggs.insert(topo.aggs.end(), pod.aggs.begin(), pod.aggs.end());
    topo.tors.insert(topo.tors.end(), pod.tors.begin(), pod.tors.end());
    topo.pods.push_back(std::move(pod));
  }

  // --- intra-pod agg<->tor links: full bipartite over in-service ToRs ---
  for (int p = 0; p < pods; ++p) {
    const auto& pod = topo.pods[static_cast<std::size_t>(p)];
    for (int a = 0; a < half; ++a) {
      for (int t = 0; t < tors_per_pod; ++t) {
        network.connect_default(*pod.aggs[static_cast<std::size_t>(a)],
                                *pod.tors[static_cast<std::size_t>(t)]);
      }
    }
  }

  // --- agg<->core links (minus the rewired-away ones) -------------------
  for (int p = 0; p < pods; ++p) {
    const auto& pod = topo.pods[static_cast<std::size_t>(p)];
    for (int a = 0; a < half; ++a) {
      const auto& group = topo.core_groups[static_cast<std::size_t>(a)];
      for (int i = 0; i < cores_per_group; ++i) {
        bool rewired_away = false;
        for (int r = 0; r < skip; ++r) {
          if (i == (p + r) % cores_per_group) rewired_away = true;
        }
        if (rewired_away) continue;
        network.connect_default(*pod.aggs[static_cast<std::size_t>(a)],
                                *group[static_cast<std::size_t>(i)]);
      }
    }
  }

  // --- across rings ------------------------------------------------------
  if (options.f2_rewire) {
    for (const auto& pod : topo.pods) {
      build_ring(network, topo, pod.aggs, options.ring_width);
    }
    for (const auto& group : topo.core_groups) {
      build_ring(network, topo, group, options.ring_width);
    }
  }

  // --- hosts --------------------------------------------------------------
  for (std::size_t t = 0; t < topo.tors.size(); ++t) {
    net::L3Switch* tor = topo.tors[t];
    topo.subnet_of_tor[tor] = AddressPlan::tor_subnet(static_cast<int>(t));
    for (int h = 0; h < hosts_per_tor; ++h) {
      net::Host& host = network.add_host(
          "h" + std::to_string(t) + "_" + std::to_string(h),
          AddressPlan::host_addr(static_cast<int>(t), h), tor);
      topo.hosts.push_back(&host);
      topo.hosts_of_tor[tor].push_back(&host);
    }
  }
  return topo;
}

}  // namespace f2t::topo
