#pragma once

#include "topo/topology.hpp"

namespace f2t::topo {

/// Two-layer Leaf-Spine (§V, Fig 7(a)).
///
/// With N-port homogeneous switches: N/2 spines, N leaves; each leaf uses
/// N/2 uplinks (one per spine) and N/2 host ports. With `f2_rewire`, each
/// spine frees two downward ports (links to leaves 2s and 2s+1 are
/// removed, so every leaf loses exactly one uplink) and the spines form a
/// ring of across links; backup routes then give spines immediate backup
/// for their downward links, which original Leaf-Spine lacks entirely.
struct LeafSpineOptions {
  int ports = 4;  ///< N: even, >= 4
  bool f2_rewire = false;
  int hosts_per_leaf = -1;  ///< default N/2
};

BuiltTopology build_leaf_spine(net::Network& network,
                               const LeafSpineOptions& options);

}  // namespace f2t::topo
