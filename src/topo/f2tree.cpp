#include "topo/f2tree.hpp"

#include <stdexcept>
#include <string>

#include "topo/addressing.hpp"

namespace f2t::topo {

namespace {

// Shared with fattree.cpp in spirit; duplicated locally because the scaled
// geometry records ring metadata the same way but over different rosters.
void build_ring2(net::Network& network, BuiltTopology& topo,
                 const std::vector<net::L3Switch*>& members) {
  const int n = static_cast<int>(members.size());
  if (n < 2) return;
  for (int i = 0; i < n; ++i) {
    net::L3Switch& from = *members[static_cast<std::size_t>(i)];
    net::L3Switch& to = *members[static_cast<std::size_t>((i + 1) % n)];
    network.connect_default(from, to);
    topo.rings[&from].right.push_back(
        static_cast<net::PortId>(from.port_count() - 1));
    topo.rings[&to].left.push_back(
        static_cast<net::PortId>(to.port_count() - 1));
  }
}

}  // namespace

BuiltTopology build_f2tree_scaled(net::Network& network,
                                  const F2TreeScaledOptions& options) {
  const int n = options.ports;
  if (n < 6 || n % 2 != 0) {
    throw std::invalid_argument(
        "f2tree scaled: ports must be even and >= 6 "
        "(N=4 leaves no room for a ToR ring pod)");
  }
  const int half = n / 2;
  const int pods = n - 2;
  const int tors_per_pod = half - 1;
  const int cores_per_group = half - 1;
  const int hosts_per_tor =
      options.hosts_per_tor >= 0 ? options.hosts_per_tor : half;
  // Backup routes must cover every host subnet, so the rewired topology is
  // bounded by the prefix chain's reach, not the full address plan.
  if (pods * tors_per_pod > AddressPlan::kMaxBackupCoveredTors ||
      hosts_per_tor > AddressPlan::kMaxHostsPerTor) {
    throw std::invalid_argument("f2tree scaled: exceeds address plan capacity");
  }

  BuiltTopology topo;
  topo.network = &network;
  topo.kind = TopologyKind::kF2Tree;
  topo.ports = n;
  topo.f2 = true;
  topo.ring_width = 2;

  for (int c = 0; c < half * cores_per_group; ++c) {
    topo.cores.push_back(&network.add_switch("core" + std::to_string(c),
                                             AddressPlan::core_router_id(c)));
  }
  topo.core_groups.resize(static_cast<std::size_t>(half));
  for (int j = 0; j < half; ++j) {
    for (int i = 0; i < cores_per_group; ++i) {
      topo.core_groups[static_cast<std::size_t>(j)].push_back(
          topo.cores[static_cast<std::size_t>(j * cores_per_group + i)]);
    }
  }

  for (int p = 0; p < pods; ++p) {
    BuiltTopology::Pod pod;
    for (int a = 0; a < half; ++a) {
      const int agg_index = p * half + a;
      pod.aggs.push_back(
          &network.add_switch("agg" + std::to_string(agg_index),
                              AddressPlan::agg_router_id(agg_index)));
    }
    for (int t = 0; t < tors_per_pod; ++t) {
      const int tor_index = p * tors_per_pod + t;
      pod.tors.push_back(
          &network.add_switch("tor" + std::to_string(tor_index),
                              AddressPlan::tor_router_id(tor_index)));
    }
    topo.aggs.insert(topo.aggs.end(), pod.aggs.begin(), pod.aggs.end());
    topo.tors.insert(topo.tors.end(), pod.tors.begin(), pod.tors.end());
    topo.pods.push_back(std::move(pod));
  }

  // Full agg x tor bipartite graph inside each pod: every agg spends
  // N/2 - 1 downward ports, every ToR spends N/2 upward ports.
  for (const auto& pod : topo.pods) {
    for (net::L3Switch* agg : pod.aggs) {
      for (net::L3Switch* tor : pod.tors) {
        network.connect_default(*agg, *tor);
      }
    }
  }

  // Agg j of every pod connects to all N/2 - 1 cores of group j.
  for (const auto& pod : topo.pods) {
    for (std::size_t a = 0; a < pod.aggs.size(); ++a) {
      for (net::L3Switch* core : topo.core_groups[a]) {
        network.connect_default(*pod.aggs[a], *core);
      }
    }
  }

  for (const auto& pod : topo.pods) build_ring2(network, topo, pod.aggs);
  for (const auto& group : topo.core_groups) build_ring2(network, topo, group);

  for (std::size_t t = 0; t < topo.tors.size(); ++t) {
    net::L3Switch* tor = topo.tors[t];
    topo.subnet_of_tor[tor] = AddressPlan::tor_subnet(static_cast<int>(t));
    for (int h = 0; h < hosts_per_tor; ++h) {
      net::Host& host = network.add_host(
          "h" + std::to_string(t) + "_" + std::to_string(h),
          AddressPlan::host_addr(static_cast<int>(t), h), tor);
      topo.hosts.push_back(&host);
      topo.hosts_of_tor[tor].push_back(&host);
    }
  }
  return topo;
}

}  // namespace f2t::topo
