#include "topo/graphviz.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_set>

namespace f2t::topo {

namespace {

void write_rank(std::ostream& os, const char* label,
                const std::vector<net::L3Switch*>& switches) {
  if (switches.empty()) return;
  os << "  { rank=same; // " << label << "\n";
  for (const auto* sw : switches) {
    os << "    \"" << sw->name() << "\";\n";
  }
  os << "  }\n";
}

}  // namespace

void write_graphviz(std::ostream& os, const BuiltTopology& topo,
                    const GraphvizOptions& options) {
  os << "graph " << (topo.f2 ? "f2tree" : "dcn") << " {\n";
  os << "  node [shape=box, fontsize=10];\n";
  write_rank(os, "core", topo.cores);
  write_rank(os, "aggregation", topo.aggs);
  write_rank(os, "tor", topo.tors);

  // Collect across links for highlighting.
  std::unordered_set<const net::Link*> across;
  if (options.highlight_across_links) {
    for (const auto& [sw, ring] : topo.rings) {
      for (const auto port : ring.right) across.insert(sw->port(port).link);
      for (const auto port : ring.left) across.insert(sw->port(port).link);
    }
  }

  for (const net::Link* link :
       const_cast<net::Network*>(topo.network)->links()) {
    const net::Node* a = link->end_a().node;
    const net::Node* b = link->end_b().node;
    const bool host_link =
        dynamic_cast<const net::L3Switch*>(a) == nullptr ||
        dynamic_cast<const net::L3Switch*>(b) == nullptr;
    if (host_link && !options.include_hosts) continue;
    os << "  \"" << a->name() << "\" -- \"" << b->name() << "\"";
    if (across.contains(link)) {
      os << " [style=dashed, color=red, penwidth=2]";
    } else if (host_link) {
      os << " [color=gray]";
    }
    os << ";\n";
  }
  os << "}\n";
}

std::string to_graphviz(const BuiltTopology& topo,
                        const GraphvizOptions& options) {
  std::ostringstream os;
  write_graphviz(os, topo, options);
  return os.str();
}

}  // namespace f2t::topo
