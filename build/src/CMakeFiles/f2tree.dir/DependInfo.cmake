
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cli.cpp" "src/CMakeFiles/f2tree.dir/core/cli.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/core/cli.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/f2tree.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/f2tree.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/scalability.cpp" "src/CMakeFiles/f2tree.dir/core/scalability.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/core/scalability.cpp.o.d"
  "/root/repo/src/failure/injector.cpp" "src/CMakeFiles/f2tree.dir/failure/injector.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/failure/injector.cpp.o.d"
  "/root/repo/src/failure/random_failures.cpp" "src/CMakeFiles/f2tree.dir/failure/random_failures.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/failure/random_failures.cpp.o.d"
  "/root/repo/src/failure/scenarios.cpp" "src/CMakeFiles/f2tree.dir/failure/scenarios.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/failure/scenarios.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/CMakeFiles/f2tree.dir/net/host.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/net/host.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/CMakeFiles/f2tree.dir/net/ipv4.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/net/ipv4.cpp.o.d"
  "/root/repo/src/net/l3switch.cpp" "src/CMakeFiles/f2tree.dir/net/l3switch.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/net/l3switch.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/f2tree.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/net/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/f2tree.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/f2tree.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/f2tree.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/CMakeFiles/f2tree.dir/net/queue.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/net/queue.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/CMakeFiles/f2tree.dir/net/trace.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/net/trace.cpp.o.d"
  "/root/repo/src/routing/central.cpp" "src/CMakeFiles/f2tree.dir/routing/central.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/central.cpp.o.d"
  "/root/repo/src/routing/detection.cpp" "src/CMakeFiles/f2tree.dir/routing/detection.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/detection.cpp.o.d"
  "/root/repo/src/routing/ecmp.cpp" "src/CMakeFiles/f2tree.dir/routing/ecmp.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/ecmp.cpp.o.d"
  "/root/repo/src/routing/fib.cpp" "src/CMakeFiles/f2tree.dir/routing/fib.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/fib.cpp.o.d"
  "/root/repo/src/routing/lsa.cpp" "src/CMakeFiles/f2tree.dir/routing/lsa.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/lsa.cpp.o.d"
  "/root/repo/src/routing/lsdb.cpp" "src/CMakeFiles/f2tree.dir/routing/lsdb.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/lsdb.cpp.o.d"
  "/root/repo/src/routing/ospf.cpp" "src/CMakeFiles/f2tree.dir/routing/ospf.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/ospf.cpp.o.d"
  "/root/repo/src/routing/pathvector.cpp" "src/CMakeFiles/f2tree.dir/routing/pathvector.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/pathvector.cpp.o.d"
  "/root/repo/src/routing/route.cpp" "src/CMakeFiles/f2tree.dir/routing/route.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/route.cpp.o.d"
  "/root/repo/src/routing/spf.cpp" "src/CMakeFiles/f2tree.dir/routing/spf.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/spf.cpp.o.d"
  "/root/repo/src/routing/spf_throttle.cpp" "src/CMakeFiles/f2tree.dir/routing/spf_throttle.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/routing/spf_throttle.cpp.o.d"
  "/root/repo/src/sim/logging.cpp" "src/CMakeFiles/f2tree.dir/sim/logging.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/sim/logging.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/f2tree.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/f2tree.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/f2tree.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/stats/cdf.cpp" "src/CMakeFiles/f2tree.dir/stats/cdf.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/stats/cdf.cpp.o.d"
  "/root/repo/src/stats/flow_metrics.cpp" "src/CMakeFiles/f2tree.dir/stats/flow_metrics.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/stats/flow_metrics.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/f2tree.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/stats/table.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/CMakeFiles/f2tree.dir/stats/timeseries.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/stats/timeseries.cpp.o.d"
  "/root/repo/src/topo/aspen.cpp" "src/CMakeFiles/f2tree.dir/topo/aspen.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/topo/aspen.cpp.o.d"
  "/root/repo/src/topo/backup_routes.cpp" "src/CMakeFiles/f2tree.dir/topo/backup_routes.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/topo/backup_routes.cpp.o.d"
  "/root/repo/src/topo/f2tree.cpp" "src/CMakeFiles/f2tree.dir/topo/f2tree.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/topo/f2tree.cpp.o.d"
  "/root/repo/src/topo/fattree.cpp" "src/CMakeFiles/f2tree.dir/topo/fattree.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/topo/fattree.cpp.o.d"
  "/root/repo/src/topo/graphviz.cpp" "src/CMakeFiles/f2tree.dir/topo/graphviz.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/topo/graphviz.cpp.o.d"
  "/root/repo/src/topo/leafspine.cpp" "src/CMakeFiles/f2tree.dir/topo/leafspine.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/topo/leafspine.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/f2tree.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/topo/topology.cpp.o.d"
  "/root/repo/src/topo/validate.cpp" "src/CMakeFiles/f2tree.dir/topo/validate.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/topo/validate.cpp.o.d"
  "/root/repo/src/topo/vl2.cpp" "src/CMakeFiles/f2tree.dir/topo/vl2.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/topo/vl2.cpp.o.d"
  "/root/repo/src/transport/app.cpp" "src/CMakeFiles/f2tree.dir/transport/app.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/transport/app.cpp.o.d"
  "/root/repo/src/transport/background.cpp" "src/CMakeFiles/f2tree.dir/transport/background.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/transport/background.cpp.o.d"
  "/root/repo/src/transport/partition_aggregate.cpp" "src/CMakeFiles/f2tree.dir/transport/partition_aggregate.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/transport/partition_aggregate.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/CMakeFiles/f2tree.dir/transport/tcp.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/transport/tcp.cpp.o.d"
  "/root/repo/src/transport/udp_app.cpp" "src/CMakeFiles/f2tree.dir/transport/udp_app.cpp.o" "gcc" "src/CMakeFiles/f2tree.dir/transport/udp_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
