# Empty compiler generated dependencies file for f2tree.
# This may be replaced when dependencies are built.
