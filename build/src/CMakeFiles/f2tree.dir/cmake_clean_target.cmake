file(REMOVE_RECURSE
  "libf2tree.a"
)
