# Empty compiler generated dependencies file for f2tree_tests.
# This may be replaced when dependencies are built.
