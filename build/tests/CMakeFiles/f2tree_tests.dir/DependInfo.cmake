
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aspen.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_aspen.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_aspen.cpp.o.d"
  "/root/repo/tests/test_central.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_central.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_central.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_control_planes_unit.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_control_planes_unit.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_control_planes_unit.cpp.o.d"
  "/root/repo/tests/test_dctcp.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_dctcp.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_dctcp.cpp.o.d"
  "/root/repo/tests/test_delack_refresh.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_delack_refresh.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_delack_refresh.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fib.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_fib.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_fib.cpp.o.d"
  "/root/repo/tests/test_fib_property.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_fib_property.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_fib_property.cpp.o.d"
  "/root/repo/tests/test_fig4_matrix.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_fig4_matrix.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_fig4_matrix.cpp.o.d"
  "/root/repo/tests/test_final_units.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_final_units.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_final_units.cpp.o.d"
  "/root/repo/tests/test_flooding.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_flooding.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_flooding.cpp.o.d"
  "/root/repo/tests/test_integration_recovery.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_integration_recovery.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_integration_recovery.cpp.o.d"
  "/root/repo/tests/test_integration_tcp.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_integration_tcp.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_integration_tcp.cpp.o.d"
  "/root/repo/tests/test_ipv4.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_ipv4.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_ipv4.cpp.o.d"
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_misc.cpp.o.d"
  "/root/repo/tests/test_more_units.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_more_units.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_more_units.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_ospf.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_ospf.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_ospf.cpp.o.d"
  "/root/repo/tests/test_pathvector.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_pathvector.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_pathvector.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_scenarios.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_scenarios.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_scenarios.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sim_property.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_sim_property.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_sim_property.cpp.o.d"
  "/root/repo/tests/test_soak.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_soak.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_soak.cpp.o.d"
  "/root/repo/tests/test_spf_unit.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_spf_unit.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_spf_unit.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_sweeps.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_sweeps.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_sweeps.cpp.o.d"
  "/root/repo/tests/test_tcp.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_tcp.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_tcp.cpp.o.d"
  "/root/repo/tests/test_tcp_reroute.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_tcp_reroute.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_tcp_reroute.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_unidirectional.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_unidirectional.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_unidirectional.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/f2tree_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/f2tree_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/f2tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
