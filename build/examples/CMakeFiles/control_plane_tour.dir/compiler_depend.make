# Empty compiler generated dependencies file for control_plane_tour.
# This may be replaced when dependencies are built.
