# Empty dependencies file for partition_aggregate_sim.
# This may be replaced when dependencies are built.
