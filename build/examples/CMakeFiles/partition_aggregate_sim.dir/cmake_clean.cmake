file(REMOVE_RECURSE
  "CMakeFiles/partition_aggregate_sim.dir/partition_aggregate_sim.cpp.o"
  "CMakeFiles/partition_aggregate_sim.dir/partition_aggregate_sim.cpp.o.d"
  "partition_aggregate_sim"
  "partition_aggregate_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_aggregate_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
