# Empty dependencies file for bench_fig5_delay.
# This may be replaced when dependencies are built.
