# Empty dependencies file for bench_secV_central.
# This may be replaced when dependencies are built.
