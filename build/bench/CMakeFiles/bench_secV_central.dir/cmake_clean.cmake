file(REMOVE_RECURSE
  "CMakeFiles/bench_secV_central.dir/bench_secV_central.cpp.o"
  "CMakeFiles/bench_secV_central.dir/bench_secV_central.cpp.o.d"
  "bench_secV_central"
  "bench_secV_central.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secV_central.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
