file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_conditions.dir/bench_fig4_conditions.cpp.o"
  "CMakeFiles/bench_fig4_conditions.dir/bench_fig4_conditions.cpp.o.d"
  "bench_fig4_conditions"
  "bench_fig4_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
