# Empty dependencies file for bench_fig4_conditions.
# This may be replaced when dependencies are built.
