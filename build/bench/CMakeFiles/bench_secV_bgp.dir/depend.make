# Empty dependencies file for bench_secV_bgp.
# This may be replaced when dependencies are built.
