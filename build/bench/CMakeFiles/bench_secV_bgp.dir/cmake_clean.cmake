file(REMOVE_RECURSE
  "CMakeFiles/bench_secV_bgp.dir/bench_secV_bgp.cpp.o"
  "CMakeFiles/bench_secV_bgp.dir/bench_secV_bgp.cpp.o.d"
  "bench_secV_bgp"
  "bench_secV_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secV_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
