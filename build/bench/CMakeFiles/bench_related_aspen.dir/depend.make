# Empty dependencies file for bench_related_aspen.
# This may be replaced when dependencies are built.
