file(REMOVE_RECURSE
  "CMakeFiles/bench_related_aspen.dir/bench_related_aspen.cpp.o"
  "CMakeFiles/bench_related_aspen.dir/bench_related_aspen.cpp.o.d"
  "bench_related_aspen"
  "bench_related_aspen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_aspen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
