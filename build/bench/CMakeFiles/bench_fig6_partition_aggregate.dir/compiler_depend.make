# Empty compiler generated dependencies file for bench_fig6_partition_aggregate.
# This may be replaced when dependencies are built.
