file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_partition_aggregate.dir/bench_fig6_partition_aggregate.cpp.o"
  "CMakeFiles/bench_fig6_partition_aggregate.dir/bench_fig6_partition_aggregate.cpp.o.d"
  "bench_fig6_partition_aggregate"
  "bench_fig6_partition_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_partition_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
