file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_testbed.dir/bench_table3_testbed.cpp.o"
  "CMakeFiles/bench_table3_testbed.dir/bench_table3_testbed.cpp.o.d"
  "bench_table3_testbed"
  "bench_table3_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
