# Empty dependencies file for bench_table3_testbed.
# This may be replaced when dependencies are built.
