# Empty dependencies file for bench_fig7_other_topologies.
# This may be replaced when dependencies are built.
