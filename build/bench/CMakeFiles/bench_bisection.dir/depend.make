# Empty dependencies file for bench_bisection.
# This may be replaced when dependencies are built.
