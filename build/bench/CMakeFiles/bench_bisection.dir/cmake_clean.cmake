file(REMOVE_RECURSE
  "CMakeFiles/bench_bisection.dir/bench_bisection.cpp.o"
  "CMakeFiles/bench_bisection.dir/bench_bisection.cpp.o.d"
  "bench_bisection"
  "bench_bisection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
