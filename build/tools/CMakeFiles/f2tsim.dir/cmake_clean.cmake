file(REMOVE_RECURSE
  "CMakeFiles/f2tsim.dir/f2tsim.cpp.o"
  "CMakeFiles/f2tsim.dir/f2tsim.cpp.o.d"
  "f2tsim"
  "f2tsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2tsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
