# Empty compiler generated dependencies file for f2tsim.
# This may be replaced when dependencies are built.
